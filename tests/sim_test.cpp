// Tests for the discrete-event kernel: ordering, FIFO tie-breaking,
// cancellation, bounded runs — and the contention resources and stochastic
// latency model built on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/inline_callback.h"
#include "sim/latency_model.h"
#include "sim/parallel.h"
#include "sim/resources.h"
#include "sim/simulator.h"

namespace uc::sim {
namespace {

using namespace units;

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(500, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(10, chain);
  };
  sim.schedule_after(10, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(100, [&] { fired = true; });
  EXPECT_FALSE(sim.idle());
  sim.cancel(id);
  EXPECT_TRUE(sim.idle());
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

// Regression for the lazy-cancel kernel's stale-entry hazard: cancelling an
// id after its event fired used to leave a phantom entry that made idle()
// report false forever.  Generation-checked handles make it a no-op.
TEST(Simulator, CancelAfterFireIsNoOpAndIdleRecovers) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(100, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.idle());
  sim.cancel(id);  // late cancel: verified no-op
  sim.cancel(id);  // and idempotent
  EXPECT_TRUE(sim.idle());
  sim.schedule_at(200, [&] { ++fired; });
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_processed(), 2u);
}

// A stale handle whose slab slot has been recycled must not cancel the new
// occupant: the generation in the handle no longer matches the slot's.
TEST(Simulator, StaleHandleDoesNotCancelRecycledSlot) {
  Simulator sim;
  bool a_fired = false;
  bool b_fired = false;
  const EventId a = sim.schedule_at(10, [&] { a_fired = true; });
  sim.run();  // fires A and recycles its slot
  const EventId b = sim.schedule_at(20, [&] { b_fired = true; });
  EXPECT_NE(a, b);  // same slot, different generation
  sim.cancel(a);    // stale: must not touch B
  sim.run();
  EXPECT_TRUE(a_fired);
  EXPECT_TRUE(b_fired);
}

// Cancel destroys the callback (and its captures) immediately rather than
// holding them until the cancelled key surfaces at the heap top.
TEST(Simulator, CancelReleasesCapturedResourcesImmediately) {
  Simulator sim;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventId id = sim.schedule_at(100, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // alive inside the pending event
  sim.cancel(id);
  EXPECT_TRUE(watch.expired());  // released at cancel, not at drain
  sim.run();
}

// A callback that throws must not leak its slab slot: the fire path relinks
// the slot through a scope guard, so it is recycled even on the exception
// path (without the guard, repeated throwing callbacks exhaust the slab).
TEST(Simulator, ThrowingCallbackDoesNotLeakSlot) {
  Simulator sim;
  const EventId thrower =
      sim.schedule_at(10, [] { throw std::runtime_error("boom"); });
  bool fired = false;
  sim.schedule_at(20, [&] { fired = true; });
  EXPECT_THROW(sim.run(), std::runtime_error);
  EXPECT_FALSE(fired);  // the throw unwound out of run()
  // The throwing event's slot is back on the free list: the next schedule
  // reuses it (same slot index, bumped generation).
  const EventId reused = sim.schedule_at(30, [] {});
  EXPECT_EQ(reused & 0xffffffffu, thrower & 0xffffffffu);
  EXPECT_NE(reused, thrower);
  sim.run();  // the surviving events still fire normally
  EXPECT_TRUE(fired);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_processed(), 3u);
}

// The 40-bit schedule sequence renormalizes when exhausted; FIFO ordering
// among equal-time events must survive the compaction.
TEST(Simulator, SequenceRenormalizationPreservesFifo) {
  Simulator sim;
  sim.set_next_sequence_for_testing((1ull << 40) - 4);
  std::vector<int> order;
  for (int i = 0; i < 12; ++i) {  // crosses the renormalization boundary
    sim.schedule_at(500, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, RunUntilAdvancesClockAndStops) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(2000, [&] { ++fired; });
  sim.run_until(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 1000u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhileStopsOnPredicate) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<SimTime>(i * 10), [&] { ++fired; });
  }
  sim.run_while([&] { return fired < 3; });
  EXPECT_EQ(fired, 3);
}

TEST(SerialResource, SerializesBackToBack) {
  SerialResource r;
  EXPECT_EQ(r.acquire(0, 100), 100u);
  EXPECT_EQ(r.acquire(0, 100), 200u);   // queued behind the first
  EXPECT_EQ(r.acquire(500, 100), 600u); // idle gap, starts immediately
  EXPECT_EQ(r.busy_time(), 300u);
}

TEST(BandwidthPipe, TransferTimeMatchesRate) {
  BandwidthPipe pipe(1000.0);  // 1000 MB/s -> 1 ns/byte
  EXPECT_EQ(pipe.transfer_time(4096), 4096u);
  EXPECT_EQ(pipe.transfer(0, 4096), 4096u);
  // Second transfer queues.
  EXPECT_EQ(pipe.transfer(0, 4096), 8192u);
}

TEST(MultiServer, ParallelThenQueues) {
  MultiServer servers(2);
  EXPECT_EQ(servers.acquire(0, 100), 100u);
  EXPECT_EQ(servers.acquire(0, 100), 100u);  // second server
  EXPECT_EQ(servers.acquire(0, 100), 200u);  // queues on earliest free
}

TEST(LatencyModel, DeterministicWithoutJitter) {
  LatencyModel model(LatencyModelConfig{.base_us = 10.0, .per_byte_ns = 2.0});
  Rng rng(1);
  EXPECT_EQ(model.floor_ns(1000), 12000u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.sample(rng, 1000), 12000u);
  }
}

TEST(LatencyModel, JitterPreservesMean) {
  LatencyModel model(LatencyModelConfig{.base_us = 100.0, .sigma = 0.3});
  Rng rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(model.sample(rng, 0));
  }
  EXPECT_NEAR(sum / n, 100000.0, 1500.0);
}

TEST(LatencyModel, SpikesInflateTail) {
  LatencyModel base(LatencyModelConfig{.base_us = 100.0, .sigma = 0.1});
  LatencyModel spiky(LatencyModelConfig{.base_us = 100.0,
                                        .sigma = 0.1,
                                        .spike_prob = 0.005,
                                        .spike_mean_us = 2000.0});
  Rng rng(3);
  SimTime base_max = 0;
  SimTime spiky_max = 0;
  for (int i = 0; i < 20000; ++i) {
    base_max = std::max(base_max, base.sample(rng, 0));
    spiky_max = std::max(spiky_max, spiky.sample(rng, 0));
  }
  EXPECT_LT(base_max, 300 * kUs);
  EXPECT_GT(spiky_max, 1000 * kUs);
}

// ---------------------------------------------------------------------------
// InlineCallback: the kernel's allocation-free callable.
// ---------------------------------------------------------------------------

TEST(InlineCallback, InvokesCaptureAtExactCapacity) {
  // A capture that fills the inline buffer to the last byte must still fit.
  struct Payload {
    std::array<unsigned char, kInlineCallbackCapacity - sizeof(int*)> bytes;
    int* sink;
  };
  static_assert(sizeof(Payload) == kInlineCallbackCapacity);
  int sum = 0;
  Payload p{};
  p.bytes.fill(1);
  p.sink = &sum;
  auto fn = [p] {
    int s = 0;
    for (const unsigned char b : p.bytes) s += b;
    *p.sink = s;
  };
  static_assert(is_inline_storable_v<decltype(fn)>);
  InlineCallback cb(std::move(fn));
  cb();
  EXPECT_EQ(sum, static_cast<int>(kInlineCallbackCapacity - sizeof(int*)));
}

TEST(InlineCallback, OversizedCaptureIsRejectedAtCompileTime) {
  // One byte past capacity flips the trait; constructing such a callback is
  // a static_assert failure, which is the contract this trait documents.
  struct TooBig {
    std::array<unsigned char, kInlineCallbackCapacity + 1> bytes;
  };
  const auto oversized = [big = TooBig{}] { (void)big; };
  static_assert(!is_inline_storable_v<decltype(oversized)>);
  (void)oversized;
  // boxed() is the escape hatch: one explicit allocation, then it fits.
  static_assert(is_inline_storable_v<decltype(boxed([big = TooBig{}] {
    (void)big;
  }))>);
}

TEST(InlineCallback, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(7);
  int got = 0;
  InlineCallback cb([p = std::move(p), &got] { got = *p; });
  InlineCallback moved(std::move(cb));
  EXPECT_FALSE(static_cast<bool>(cb));
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(got, 7);
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget) {
  auto a_alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch_a = a_alive;
  InlineCallback cb([keep = std::move(a_alive)] { (void)keep; });
  EXPECT_FALSE(watch_a.expired());
  cb = InlineCallback([] {});
  EXPECT_TRUE(watch_a.expired());
  cb();  // the replacement target is the live one
}

TEST(InlineCallback, ResetReleasesCapture) {
  auto alive = std::make_shared<int>(2);
  std::weak_ptr<int> watch = alive;
  InlineCallback cb([keep = std::move(alive)] { (void)keep; });
  cb.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

// ---------------------------------------------------------------------------
// Randomized property test: the kernel against a naive reference model.
// ---------------------------------------------------------------------------

// The reference is deliberately dumb: a flat list scanned for the earliest
// live (time, id) pair on every fire.  Anything the slab heap, the slot
// recycling, or the clock rules get wrong shows up as a divergence.
class ReferenceModel {
 public:
  void schedule(SimTime t, std::uint64_t id) { pending_.push_back({t, id}); }

  // Cancelling something already fired (not pending any more) is a no-op.
  void cancel(std::uint64_t id) {
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [id](const Ref& e) { return e.id == id; }),
                   pending_.end());
  }

  // Fires everything with time <= `t` in (time, id) order, appending ids to
  // `out`; `on_fire` may schedule more (chained events).  Mirrors
  // `Simulator::run_until`: the clock then advances to `t`.
  void run_until(SimTime t, std::vector<std::uint64_t>* out,
                 const std::function<void(std::uint64_t)>& on_fire = {}) {
    while (fire_next(t, out, on_fire)) {
    }
    if (now_ < t) now_ = t;
  }

  // Mirrors `Simulator::run`: drains, clock stops at the last fired event.
  void run(std::vector<std::uint64_t>* out,
           const std::function<void(std::uint64_t)>& on_fire = {}) {
    while (fire_next(kNoLimit, out, on_fire)) {
    }
  }

  SimTime now() const { return now_; }

 private:
  struct Ref {
    SimTime time;
    std::uint64_t id;
  };
  static constexpr SimTime kNoLimit = static_cast<SimTime>(-1);

  bool fire_next(SimTime t, std::vector<std::uint64_t>* out,
                 const std::function<void(std::uint64_t)>& on_fire) {
    std::size_t best = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].time > t) continue;
      if (best == pending_.size() ||
          pending_[i].time < pending_[best].time ||
          (pending_[i].time == pending_[best].time &&
           pending_[i].id < pending_[best].id)) {
        best = i;
      }
    }
    if (best == pending_.size()) return false;
    const Ref e = pending_[best];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
    now_ = e.time;
    out->push_back(e.id);
    if (on_fire) on_fire(e.id);
    return true;
  }

  std::vector<Ref> pending_;
  SimTime now_ = 0;
};

TEST(SimulatorProperty, RandomInterleavingsMatchReference) {
  for (const std::uint64_t seed : {1ull, 42ull, 0x5eedull, 77777ull}) {
    Rng rng(seed);
    Simulator sim;
    ReferenceModel ref;
    std::vector<std::uint64_t> fired_sim;
    std::vector<std::uint64_t> fired_ref;
    // Handles are opaque (slot | generation packed), so the test carries its
    // own tag alongside each issued handle.  Tags increase in schedule order,
    // which is exactly the FIFO tie-break the reference model uses.
    std::vector<std::pair<EventId, std::uint64_t>> issued;
    std::uint64_t next_tag = 1;

    for (int op = 0; op < 3000; ++op) {
      const std::uint64_t r = rng.uniform_u64(100);
      if (r < 55 || issued.empty()) {
        // Tight time range so equal-timestamp collisions are common and the
        // FIFO tie-break is exercised constantly.
        const SimTime t = sim.now() + rng.uniform_u64(16);
        const std::uint64_t tag = next_tag++;
        const EventId id = sim.schedule_at(
            t, [&fired_sim, tag] { fired_sim.push_back(tag); });
        ref.schedule(t, tag);
        issued.push_back({id, tag});
      } else if (r < 75) {
        // Cancel anything ever issued: pending, already fired (the stale
        // handle's slot may have been recycled — must be a no-op), or
        // already cancelled (idempotent).
        const auto& [id, tag] = issued[rng.uniform_u64(issued.size())];
        sim.cancel(id);
        ref.cancel(tag);
      } else {
        const SimTime t = sim.now() + rng.uniform_u64(24);
        sim.run_until(t);
        ref.run_until(t, &fired_ref);
        ASSERT_EQ(fired_sim, fired_ref) << "seed " << seed << " op " << op;
        ASSERT_EQ(sim.now(), ref.now());
      }
    }
    sim.run();
    ref.run(&fired_ref);
    EXPECT_EQ(fired_sim, fired_ref) << "seed " << seed;
    EXPECT_EQ(sim.now(), ref.now());
    EXPECT_EQ(sim.events_processed(), fired_sim.size());
  }
}

TEST(SimulatorProperty, ChainedSchedulingMatchesReference) {
  for (const std::uint64_t seed : {3ull, 2026ull}) {
    Rng rng(seed);
    Simulator sim;
    ReferenceModel ref;
    std::vector<std::uint64_t> fired_sim;
    std::vector<std::uint64_t> fired_ref;
    std::uint64_t next_sim_tag = 1;
    std::uint64_t next_ref_tag = 1;

    // Every third event chains a follower at fire time; the follower's
    // delay depends only on its parent's tag.  Both sides fire in the same
    // global order, so their tag counters advance in lockstep — any ordering
    // bug desynchronizes the tags immediately.
    std::function<void(std::uint64_t)> fire_sim =
        [&](std::uint64_t tag) {
          fired_sim.push_back(tag);
          if (tag % 3 == 0) {
            const std::uint64_t child = next_sim_tag++;
            sim.schedule_at(sim.now() + tag % 7,
                            [&fire_sim, child] { fire_sim(child); });
          }
        };
    const auto on_ref_fire = [&](std::uint64_t tag) {
      if (tag % 3 == 0) {
        const std::uint64_t child = next_ref_tag++;
        ref.schedule(ref.now() + tag % 7, child);
      }
    };

    for (int i = 0; i < 200; ++i) {
      const SimTime t = rng.uniform_u64(50);
      const std::uint64_t tag = next_sim_tag++;
      next_ref_tag++;
      sim.schedule_at(t, [&fire_sim, tag] { fire_sim(tag); });
      ref.schedule(t, tag);
    }
    sim.run();
    ref.run(&fired_ref, on_ref_fire);
    EXPECT_EQ(fired_sim, fired_ref) << "seed " << seed;
    EXPECT_EQ(sim.now(), ref.now());
  }
}

// ---------------------------------------------------------------------------
// ParallelExecutor: the epoch primitive under the engine.
// ---------------------------------------------------------------------------

TEST(ParallelExecutor, RunsEveryShardOnceAtAnyThreadCount) {
  for (const int threads : {1, 2, 4, 8}) {
    ParallelExecutor exec(threads);
    EXPECT_EQ(exec.threads(), threads);
    constexpr std::size_t kShards = 13;  // more shards than workers
    std::vector<int> hits(kShards, 0);   // distinct slots; join = barrier
    exec.run_epoch(kShards, [&hits](std::size_t s) { hits[s] += 1; });
    EXPECT_EQ(exec.epochs(), 1u);
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(hits[s], 1) << "shard " << s << " threads " << threads;
    }
  }
}

TEST(ParallelExecutor, ShardResultsIndependentOfThreadCount) {
  // Each shard runs its own simulator; the outputs must not depend on which
  // worker ran the shard or how many ran concurrently.
  const auto run_fleet = [](int threads) {
    ParallelExecutor exec(threads);
    std::vector<std::uint64_t> out(6, 0);
    exec.run_epoch(out.size(), [&out](std::size_t s) {
      Simulator sim;
      Rng rng(1000 + s);
      std::uint64_t acc = 0;
      for (std::uint64_t i = 0; i < 200; ++i) {
        sim.schedule_at(rng.uniform_u64(50),
                        [&acc, i] { acc = acc * 31 + i; });
      }
      sim.run();
      out[s] = acc ^ sim.events_processed() ^ sim.now();
    });
    return out;
  };
  const std::vector<std::uint64_t> sequential = run_fleet(1);
  EXPECT_EQ(sequential, run_fleet(2));
  EXPECT_EQ(sequential, run_fleet(4));
  EXPECT_EQ(sequential, run_fleet(8));
}

TEST(ParallelExecutor, ClampsThreadsAndCountsEpochs) {
  ParallelExecutor exec(0);
  EXPECT_EQ(exec.threads(), 1);
  exec.run_epoch(0, [](std::size_t) { FAIL() << "no shards to run"; });
  EXPECT_EQ(exec.epochs(), 0u);  // a zero-shard call ran no barrier
  exec.run_epoch(3, [](std::size_t) {});
  EXPECT_EQ(exec.epochs(), 1u);
  EXPECT_GE(ParallelExecutor::max_threads(), 1);
}

TEST(ParallelExecutor, ShardExceptionRethrownAtTheBarrier) {
  // A throwing shard body must surface on the coordinating thread (not
  // std::terminate a worker), every other shard must still run, and the
  // pool must stay usable for the next epoch.
  for (const int threads : {1, 4}) {
    ParallelExecutor exec(threads);
    constexpr std::size_t kShards = 8;
    std::array<std::atomic<int>, kShards> hits{};
    bool caught = false;
    try {
      exec.run_epoch(kShards, [&hits](std::size_t s) {
        hits[s].fetch_add(1, std::memory_order_relaxed);
        if (s == 3) throw std::runtime_error("shard 3 failed");
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "shard 3 failed");
    }
    EXPECT_TRUE(caught) << "threads " << threads;
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(hits[s].load(), 1) << "shard " << s << " threads " << threads;
    }
    // The pool survives the failed epoch.
    std::atomic<int> ran{0};
    exec.run_epoch(kShards, [&ran](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), static_cast<int>(kShards));
    EXPECT_EQ(exec.epochs(), 2u);
  }
}

}  // namespace
}  // namespace uc::sim
