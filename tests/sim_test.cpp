// Tests for the discrete-event kernel: ordering, FIFO tie-breaking,
// cancellation, bounded runs — and the contention resources and stochastic
// latency model built on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/latency_model.h"
#include "sim/resources.h"
#include "sim/simulator.h"

namespace uc::sim {
namespace {

using namespace units;

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(500, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(10, chain);
  };
  sim.schedule_after(10, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(100, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, RunUntilAdvancesClockAndStops) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(2000, [&] { ++fired; });
  sim.run_until(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 1000u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhileStopsOnPredicate) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<SimTime>(i * 10), [&] { ++fired; });
  }
  sim.run_while([&] { return fired < 3; });
  EXPECT_EQ(fired, 3);
}

TEST(SerialResource, SerializesBackToBack) {
  SerialResource r;
  EXPECT_EQ(r.acquire(0, 100), 100u);
  EXPECT_EQ(r.acquire(0, 100), 200u);   // queued behind the first
  EXPECT_EQ(r.acquire(500, 100), 600u); // idle gap, starts immediately
  EXPECT_EQ(r.busy_time(), 300u);
}

TEST(BandwidthPipe, TransferTimeMatchesRate) {
  BandwidthPipe pipe(1000.0);  // 1000 MB/s -> 1 ns/byte
  EXPECT_EQ(pipe.transfer_time(4096), 4096u);
  EXPECT_EQ(pipe.transfer(0, 4096), 4096u);
  // Second transfer queues.
  EXPECT_EQ(pipe.transfer(0, 4096), 8192u);
}

TEST(MultiServer, ParallelThenQueues) {
  MultiServer servers(2);
  EXPECT_EQ(servers.acquire(0, 100), 100u);
  EXPECT_EQ(servers.acquire(0, 100), 100u);  // second server
  EXPECT_EQ(servers.acquire(0, 100), 200u);  // queues on earliest free
}

TEST(LatencyModel, DeterministicWithoutJitter) {
  LatencyModel model(LatencyModelConfig{.base_us = 10.0, .per_byte_ns = 2.0});
  Rng rng(1);
  EXPECT_EQ(model.floor_ns(1000), 12000u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.sample(rng, 1000), 12000u);
  }
}

TEST(LatencyModel, JitterPreservesMean) {
  LatencyModel model(LatencyModelConfig{.base_us = 100.0, .sigma = 0.3});
  Rng rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(model.sample(rng, 0));
  }
  EXPECT_NEAR(sum / n, 100000.0, 1500.0);
}

TEST(LatencyModel, SpikesInflateTail) {
  LatencyModel base(LatencyModelConfig{.base_us = 100.0, .sigma = 0.1});
  LatencyModel spiky(LatencyModelConfig{.base_us = 100.0,
                                        .sigma = 0.1,
                                        .spike_prob = 0.005,
                                        .spike_mean_us = 2000.0});
  Rng rng(3);
  SimTime base_max = 0;
  SimTime spiky_max = 0;
  for (int i = 0; i < 20000; ++i) {
    base_max = std::max(base_max, base.sample(rng, 0));
    spiky_max = std::max(spiky_max, spiky.sample(rng, 0));
  }
  EXPECT_LT(base_max, 300 * kUs);
  EXPECT_GT(spiky_max, 1000 * kUs);
}

}  // namespace
}  // namespace uc::sim
