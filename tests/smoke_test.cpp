// Smoke test: builds one scaled SSD, writes and reads through the full
// FTL/flash stack, and checks basic latency plausibility plus end-to-end
// mapping integrity.  The real per-module suites live in the sibling files.

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/simulator.h"
#include "ssd/ssd_device.h"

namespace uc {
namespace {

using namespace units;

TEST(Smoke, WriteThenReadCompletesWithPlausibleLatency) {
  sim::Simulator sim;
  auto cfg = ssd::samsung_970pro_scaled(4 * kGiB);
  ssd::SsdDevice dev(sim, cfg);

  bool write_done = false;
  SimTime write_latency = 0;
  dev.submit(IoRequest{1, IoOp::kWrite, 0, 4096},
             [&](const IoResult& r) {
               write_done = true;
               write_latency = r.latency();
             });
  sim.run();
  ASSERT_TRUE(write_done);
  // Buffered write: ~10 us, certainly below 50 us and above 1 us.
  EXPECT_GT(write_latency, 1 * kUs);
  EXPECT_LT(write_latency, 50 * kUs);

  bool read_done = false;
  SimTime read_latency = 0;
  dev.submit(IoRequest{2, IoOp::kRead, 0, 4096},
             [&](const IoResult& r) {
               read_done = true;
               read_latency = r.latency();
             });
  sim.run();
  ASSERT_TRUE(read_done);
  // Data still in the write buffer: DRAM-speed read.
  EXPECT_LT(read_latency, 50 * kUs);
}

TEST(Smoke, FlushDrainsBufferAndIntegrityHolds) {
  sim::Simulator sim;
  auto cfg = ssd::samsung_970pro_scaled(4 * kGiB);
  ssd::SsdDevice dev(sim, cfg);

  int completions = 0;
  for (int i = 0; i < 64; ++i) {
    dev.submit(IoRequest{static_cast<IoId>(i), IoOp::kWrite,
                         static_cast<ByteOffset>(i) * 64 * kKiB, 64 * 1024},
               [&](const IoResult&) { ++completions; });
  }
  bool flushed = false;
  dev.submit(IoRequest{1000, IoOp::kFlush, 0, 0},
             [&](const IoResult&) { flushed = true; });
  sim.run();
  EXPECT_EQ(completions, 64);
  ASSERT_TRUE(flushed);
  EXPECT_TRUE(dev.ftl().write_buffer_empty());
  EXPECT_TRUE(dev.ftl().check_integrity().is_ok());
}

}  // namespace
}  // namespace uc
