// Multi-tenant subsystem tests: volume isolation on a shared cluster,
// segment-pool/stats reconciliation, fair-share fairness, and
// noisy-neighbour interference against the solo baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "ebs/cluster.h"
#include "essd/essd_config.h"
#include "tenant/fairness.h"
#include "tenant/scenarios.h"
#include "tenant/tenant.h"
#include "workload/runner.h"

namespace uc {
namespace {

using namespace units;

ebs::ClusterConfig small_cluster() {
  ebs::ClusterConfig cfg;
  cfg.fabric.nodes = 6;
  cfg.fabric.vm_nic_mbps = 4000.0;
  cfg.fabric.node_nic_mbps = 2000.0;
  cfg.fabric.hop = sim::LatencyModelConfig{.base_us = 10.0};
  cfg.chunk_bytes = 4 * kMiB;
  cfg.segment_bytes = 1 * kMiB;
  cfg.replication = 3;
  cfg.spare_pool_bytes = 32 * kMiB;
  cfg.replica_write = sim::LatencyModelConfig{.base_us = 20.0};
  cfg.replica_read = sim::LatencyModelConfig{.base_us = 60.0};
  cfg.node_cache_pages = 64;
  cfg.seed = 3;
  return cfg;
}

void write_sync(sim::Simulator& sim, ebs::StorageCluster& cluster,
                ebs::VolumeId vol, ByteOffset off, std::uint32_t bytes,
                WriteStamp first) {
  bool done = false;
  cluster.write(vol, off, bytes, first, [&] { done = true; });
  sim.run();
  ASSERT_TRUE(done);
}

TEST(SharedCluster, VolumesAreIsolated) {
  sim::Simulator sim;
  ebs::StorageCluster cluster(sim, small_cluster());
  const auto a = cluster.attach_volume(16 * kMiB);
  const auto b = cluster.attach_volume(16 * kMiB);
  ASSERT_EQ(cluster.volume_count(), 2u);

  // Tenant A writes; tenant B's identical offsets stay unwritten.
  write_sync(sim, cluster, a, 0, 16384, /*first=*/100);
  EXPECT_TRUE(cluster.is_written(a, 0));
  EXPECT_TRUE(cluster.is_written(a, 12288));
  EXPECT_FALSE(cluster.is_written(b, 0));
  EXPECT_FALSE(cluster.is_written(b, 12288));

  // Tenant B writes the same offsets with different stamps; A's data keeps
  // its own stamps.
  write_sync(sim, cluster, b, 0, 16384, /*first=*/900);
  EXPECT_EQ(cluster.page_stamp(a, 0), 100u);
  EXPECT_EQ(cluster.page_stamp(a, 12288), 103u);
  EXPECT_EQ(cluster.page_stamp(b, 0), 900u);
  EXPECT_EQ(cluster.page_stamp(b, 12288), 903u);

  // Per-volume stats split while the cluster totals aggregate.
  EXPECT_EQ(cluster.volume_stats(a).written_pages, 4u);
  EXPECT_EQ(cluster.volume_stats(b).written_pages, 4u);
  EXPECT_EQ(cluster.stats().written_pages, 8u);
  EXPECT_TRUE(cluster.check_invariants());
}

TEST(SharedCluster, TrimReconcilesWithPoolAccounting) {
  sim::Simulator sim;
  ebs::StorageCluster cluster(sim, small_cluster());
  const auto a = cluster.attach_volume(16 * kMiB);
  const auto b = cluster.attach_volume(16 * kMiB);

  write_sync(sim, cluster, a, 0, 1 * kMiB, 1);
  write_sync(sim, cluster, b, 0, 2 * kMiB, 1000);
  EXPECT_EQ(cluster.live_pages(a), 256u);
  EXPECT_EQ(cluster.live_pages(b), 512u);
  EXPECT_EQ(cluster.live_pages(), 768u);

  // Trim half of A: its garbage grows, B is untouched, and the cluster
  // totals still reconcile with the segment pool.
  cluster.trim(a, 0, 512 * kKiB);
  EXPECT_EQ(cluster.live_pages(a), 128u);
  EXPECT_EQ(cluster.garbage_pages(a), 128u);
  EXPECT_EQ(cluster.volume_stats(a).trimmed_pages, 128u);
  EXPECT_EQ(cluster.live_pages(b), 512u);
  EXPECT_EQ(cluster.garbage_pages(b), 0u);
  EXPECT_TRUE(cluster.check_invariants());

  // Trimming unwritten pages is a no-op for the garbage accounting.
  cluster.trim(b, 8 * kMiB, 1 * kMiB);
  EXPECT_EQ(cluster.garbage_pages(b), 0u);
  EXPECT_EQ(cluster.volume_stats(b).trimmed_pages, 0u);
  EXPECT_TRUE(cluster.check_invariants());

  // Overwrites create garbage that also must reconcile.
  write_sync(sim, cluster, b, 0, 2 * kMiB, 2000);
  EXPECT_EQ(cluster.live_pages(b), 512u);
  EXPECT_EQ(cluster.garbage_pages(b), 512u);
  EXPECT_TRUE(cluster.check_invariants());
}

TEST(SharedCluster, LegacySingleVolumePathIsVolumeZero) {
  sim::Simulator sim;
  ebs::StorageCluster cluster(sim, small_cluster(), 16 * kMiB);
  EXPECT_EQ(cluster.volume_count(), 1u);
  EXPECT_EQ(cluster.volume_bytes(0), 16 * kMiB);
  bool done = false;
  cluster.write(0, 4096, 1, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(cluster.is_written(0));        // legacy accessor
  EXPECT_TRUE(cluster.is_written(0, 0));     // volume-qualified accessor
  EXPECT_TRUE(cluster.check_invariants());
}

TEST(SharedClusterHost, RunsTenantsConcurrently) {
  essd::EssdConfig base = essd::aws_io2_profile(64 * kMiB);
  base.cluster.spare_pool_bytes = 128 * kMiB;
  std::vector<tenant::TenantSpec> tenants(2);
  for (int i = 0; i < 2; ++i) {
    tenants[i].name = i == 0 ? "t0" : "t1";
    tenants[i].capacity_bytes = 64 * kMiB;
    tenants[i].qos.bw_bytes_per_s = 1.0e9;
    tenants[i].load.job.pattern = wl::AccessPattern::kRandom;
    tenants[i].load.job.io_bytes = 16384;
    tenants[i].load.job.queue_depth = 4;
    tenants[i].load.job.total_ops = 500;
    tenants[i].load.job.seed = 11 + i;
  }
  sim::Simulator sim;
  tenant::SharedClusterHost host(sim, base, tenants);
  const auto result = host.run();
  ASSERT_EQ(result.stats.size(), 2u);
  EXPECT_EQ(result.stats[0].total_ops(), 500u);
  EXPECT_EQ(result.stats[1].total_ops(), 500u);
  EXPECT_GT(result.makespan, 0u);
  EXPECT_TRUE(host.cluster().check_invariants());
  // Both tenants really ran on the one cluster.
  EXPECT_EQ(host.cluster().volume_count(), 2u);
  EXPECT_EQ(host.cluster().stats().writes,
            host.cluster().volume_stats(0).writes +
                host.cluster().volume_stats(1).writes);
}

TEST(JainIndex, MatchesDefinition) {
  EXPECT_DOUBLE_EQ(tenant::jain_index({1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(tenant::jain_index({1.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(tenant::jain_index({4.0, 1.0}), 25.0 / 34.0, 1e-12);
}

TEST(Scenarios, FairShareIsFair) {
  tenant::ScenarioOptions opt;
  opt.quick = true;
  const auto result =
      tenant::run_scenario(tenant::Scenario::kFairShare, opt);
  EXPECT_GE(result.report.jain_index, 0.95);
  // Healthy colocation: nobody's tail explodes against their solo run.
  for (const auto& m : result.report.tenants) {
    EXPECT_LT(m.interference, 1.5) << m.name;
  }
}

TEST(Scenarios, NoisyNeighborInflatesVictimTail) {
  tenant::ScenarioOptions opt;
  opt.quick = true;
  const auto result =
      tenant::run_scenario(tenant::Scenario::kNoisyNeighbor, opt);
  int victims = 0;
  for (const auto& m : result.report.tenants) {
    if (m.name.rfind("victim", 0) != 0) continue;
    ++victims;
    EXPECT_GE(m.interference, 2.0) << m.name << " p99 " << m.p99_us
                                   << "us vs solo " << m.solo_p99_us << "us";
  }
  EXPECT_EQ(victims, 2);
}

TEST(Scenarios, CleanerPressureStallsClusterWide) {
  tenant::ScenarioOptions opt;
  opt.quick = true;
  opt.solo_baselines = false;  // the cliff signal lives in the cluster stats
  const auto result =
      tenant::run_scenario(tenant::Scenario::kCleanerPressure, opt);
  EXPECT_GT(result.cluster.stalled_writes, 0u);
  EXPECT_GT(result.cluster.append_stall_ns, 0u);
  EXPECT_GT(result.cleaner.segments_cleaned, 0u);
}

TEST(Scenarios, BurstCollisionSpikesTails) {
  tenant::ScenarioOptions opt;
  opt.quick = true;
  const auto result =
      tenant::run_scenario(tenant::Scenario::kBurstCollision, opt);
  // Everyone bursts together, so everyone's tail inflates vs. solo.
  for (const auto& m : result.report.tenants) {
    EXPECT_GE(m.interference, 1.5) << m.name;
  }
  // ...but the shares stay symmetric.
  EXPECT_GE(result.report.jain_index, 0.95);
}

}  // namespace
}  // namespace uc
