// End-to-end FTL tests: read-after-write consistency through buffer, flash
// and GC; trim semantics; flush barriers; GC lifecycle under sustained
// overwrites; reliability injection; and a TEST_P property sweep asserting
// full mapping integrity after randomized op streams.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "common/units.h"
#include "ftl/ftl.h"
#include "sim/simulator.h"

namespace uc::ftl {
namespace {

using namespace units;

FtlConfig small_config() {
  FtlConfig cfg;
  flash::FlashGeometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.planes_per_die = 2;
  g.blocks_per_plane = 24;
  g.pages_per_block = 16;
  g.page_bytes = 16384;
  cfg.geometry = g;
  // superblock = 4 dies * 2 planes * 16 pages * 16 KiB = 2 MiB;
  // physical = 48 MiB.
  cfg.timing = flash::FlashTiming{};
  cfg.gc.trigger_free_sbs = 3;
  cfg.gc.stop_free_sbs = 5;
  cfg.gc.user_reserve_sbs = 2;
  cfg.user_capacity_bytes = 32 * kMiB;
  cfg.write_buffer_slots = 256;
  cfg.read_cache_slots = 128;
  return cfg;
}

/// Drives the FTL synchronously: issues an op and runs the sim to idle.
struct Harness {
  sim::Simulator sim;
  Ftl ftl;

  explicit Harness(const FtlConfig& cfg) : ftl(sim, cfg, Rng(1234)) {}

  void write(Lpn lpn, std::uint32_t pages = 1) {
    bool done = false;
    ftl.write(lpn, pages, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
  }
  SimTime read(Lpn lpn, std::uint32_t pages = 1) {
    bool done = false;
    const SimTime t0 = sim.now();
    SimTime t1 = 0;
    ftl.read(lpn, pages, [&] {
      done = true;
      t1 = sim.now();
    });
    sim.run();
    EXPECT_TRUE(done);
    return t1 - t0;
  }
  void flush() {
    bool done = false;
    ftl.flush([&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
  }
};

TEST(Ftl, WriteAckIsBuffered) {
  Harness h(small_config());
  bool done = false;
  h.ftl.write(0, 1, [&] { done = true; });
  h.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.ftl.stats().host_write_pages, 1u);
}

TEST(Ftl, ReadHitsBufferBeforeFlush) {
  Harness h(small_config());
  h.write(5);
  const SimTime lat = h.read(5);
  // DRAM-speed: well under a flash sense.
  EXPECT_LT(lat, 20 * kUs);
  EXPECT_GE(h.ftl.stats().buffer_hit_pages, 1u);
}

TEST(Ftl, FlushDrainsAndMapsEverything) {
  Harness h(small_config());
  for (Lpn l = 0; l < 64; ++l) h.write(l);
  h.flush();
  EXPECT_TRUE(h.ftl.write_buffer_empty());
  EXPECT_EQ(h.ftl.mapping().mapped_count(), 64u);
  EXPECT_TRUE(h.ftl.check_integrity().is_ok());
}

TEST(Ftl, ReadAfterFlushGoesToFlash) {
  Harness h(small_config());
  for (Lpn l = 0; l < 64; ++l) h.write(l);
  h.flush();
  // Random (non-sequential) single read: full flash sense on the path.
  const SimTime lat = h.read(37);
  EXPECT_GT(lat, 40 * kUs);
  EXPECT_GE(h.ftl.stats().flash_read_pages, 1u);
}

TEST(Ftl, UnmappedReadsServeFast) {
  Harness h(small_config());
  const SimTime lat = h.read(100);
  EXPECT_LT(lat, 10 * kUs);
  EXPECT_EQ(h.ftl.stats().unmapped_read_pages, 1u);
}

TEST(Ftl, TrimUnmapsAndDefeatsBufferedData) {
  Harness h(small_config());
  h.write(9);
  h.ftl.trim(9, 1);
  h.sim.run();
  // The read must not hit the discarded buffer copy.
  const SimTime lat = h.read(9);
  EXPECT_LT(lat, 10 * kUs);
  EXPECT_EQ(h.ftl.stats().unmapped_read_pages, 1u);
  h.flush();
  EXPECT_FALSE(h.ftl.mapping().is_mapped(9));
  EXPECT_TRUE(h.ftl.check_integrity().is_ok());
}

TEST(Ftl, SequentialReadsPrefetchIntoCache) {
  auto cfg = small_config();
  cfg.prefetch.read_ahead_pages = 32;
  Harness h(cfg);
  for (Lpn l = 0; l < 256; ++l) h.write(l);
  h.flush();
  for (Lpn l = 0; l < 200; ++l) h.read(l);
  EXPECT_GT(h.ftl.stats().cache_hit_pages, 100u);
  EXPECT_GT(h.ftl.stats().prefetch_row_reads, 0u);
}

TEST(Ftl, GcReclaimsUnderSustainedOverwrites) {
  Harness h(small_config());
  Rng rng(7);
  const Lpn user_pages = h.ftl.user_pages();
  // Write ~3x the device capacity of random overwrites.
  for (std::uint64_t i = 0; i < 3 * user_pages; ++i) {
    h.write(rng.uniform_u64(user_pages));
  }
  h.flush();
  EXPECT_GT(h.ftl.gc_stats().victims_collected, 0u);
  EXPECT_GT(h.ftl.gc_stats().erased_superblocks, 0u);
  EXPECT_GT(h.ftl.write_amplification(), 1.0);
  EXPECT_TRUE(h.ftl.check_integrity().is_ok());
}

TEST(Ftl, ProgramFailuresAreRetriedTransparently) {
  auto cfg = small_config();
  cfg.timing.program_fail_prob = 0.05;
  Harness h(cfg);
  for (Lpn l = 0; l < 512; ++l) h.write(l % 128);
  h.flush();
  EXPECT_GT(h.ftl.stats().program_retries, 0u);
  EXPECT_TRUE(h.ftl.check_integrity().is_ok());
}

TEST(Ftl, EraseFailuresRetireSuperblocks) {
  auto cfg = small_config();
  // Low per-die failure rate: a few superblocks retire over the run but the
  // pool survives (a drive whose spare pool erodes away is simply dead).
  cfg.timing.erase_fail_prob = 0.008;
  Harness h(cfg);
  Rng rng(9);
  for (std::uint64_t i = 0; i < 2 * h.ftl.user_pages(); ++i) {
    h.write(rng.uniform_u64(h.ftl.user_pages()));
  }
  h.flush();
  EXPECT_GT(h.ftl.gc_stats().retired_superblocks, 0u);
  EXPECT_TRUE(h.ftl.check_integrity().is_ok());
}

TEST(Ftl, ConfigValidationRejectsOversizedCapacity) {
  auto cfg = small_config();
  cfg.user_capacity_bytes = 47 * kMiB;  // physical is 48 MiB
  EXPECT_FALSE(cfg.validate().is_ok());
  cfg = small_config();
  cfg.write_buffer_slots = 2;  // below one allocation row
  EXPECT_FALSE(cfg.validate().is_ok());
}

// Property sweep: after an arbitrary mix of writes, overwrites, trims and
// reads across several seeds, a drained FTL must satisfy full mapping
// integrity and reflect exactly the shadow model's view.
class FtlConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlConsistency, RandomOpStreamKeepsIntegrity) {
  Harness h(small_config());
  Rng rng(GetParam());
  std::unordered_map<Lpn, bool> shadow_mapped;
  const Lpn span = h.ftl.user_pages();
  for (int i = 0; i < 4000; ++i) {
    const Lpn lpn = rng.uniform_u64(span - 4);
    const double dice = rng.uniform();
    if (dice < 0.62) {
      const auto pages = static_cast<std::uint32_t>(rng.uniform_range(1, 4));
      h.write(lpn, pages);
      for (std::uint32_t p = 0; p < pages; ++p) shadow_mapped[lpn + p] = true;
    } else if (dice < 0.72) {
      const auto pages = static_cast<std::uint32_t>(rng.uniform_range(1, 4));
      h.ftl.trim(lpn, pages);
      h.sim.run();
      for (std::uint32_t p = 0; p < pages; ++p) shadow_mapped[lpn + p] = false;
    } else {
      h.read(lpn, static_cast<std::uint32_t>(rng.uniform_range(1, 4)));
    }
  }
  h.flush();
  ASSERT_TRUE(h.ftl.check_integrity().is_ok());
  for (const auto& [lpn, mapped] : shadow_mapped) {
    EXPECT_EQ(h.ftl.mapping().is_mapped(lpn), mapped) << "lpn " << lpn;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlConsistency,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace uc::ftl
