// Tests for the Implication-4 smoother and Implication-5 reducing device
// decorators.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "ssd/ssd_device.h"
#include "workload/reducer.h"
#include "workload/shaper.h"
#include "workload/trace.h"

namespace uc::wl {
namespace {

using namespace units;

struct Fixture {
  sim::Simulator sim;
  ssd::SsdDevice dev;
  Fixture() : dev(sim, ssd::samsung_970pro_scaled(1 * kGiB)) {}
};

TEST(SmoothingDevice, PacesAboveTargetRate) {
  Fixture f;
  SmoothingDevice smooth(f.sim, f.dev, SmootherConfig{100e6, 0.01});  // 100 MB/s
  std::uint64_t bytes_done = 0;
  SimTime last = 0;
  // Submit a 50 MB burst instantly; the smoother must stretch it to ~0.5 s.
  for (int i = 0; i < 200; ++i) {
    smooth.submit(IoRequest{static_cast<IoId>(i), IoOp::kWrite,
                            static_cast<ByteOffset>(i) * 262144, 262144},
                  [&](const IoResult& r) {
                    bytes_done += r.bytes;
                    last = r.complete_time;
                  });
  }
  f.sim.run();
  EXPECT_EQ(bytes_done, 200u * 262144);
  const double effective_rate =
      static_cast<double>(bytes_done) / (static_cast<double>(last) / 1e9);
  EXPECT_LT(effective_rate, 130e6);
  EXPECT_GT(effective_rate, 80e6);
  EXPECT_GT(smooth.stats().delayed, 100u);
}

TEST(SmoothingDevice, PassThroughUnderTarget) {
  Fixture f;
  SmoothingDevice smooth(f.sim, f.dev, SmootherConfig{1e9, 0.1});
  bool done = false;
  smooth.submit(IoRequest{1, IoOp::kWrite, 0, 4096},
                [&](const IoResult&) { done = true; });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(smooth.stats().passed_through, 1u);
  EXPECT_EQ(smooth.stats().delayed, 0u);
}

TEST(SmoothingDevice, PreservesSubmissionOrderUnderPressure) {
  Fixture f;
  SmoothingDevice smooth(f.sim, f.dev, SmootherConfig{50e6, 0.001});
  std::vector<int> release_order;
  for (int i = 0; i < 20; ++i) {
    smooth.submit(IoRequest{static_cast<IoId>(i + 1), IoOp::kWrite,
                            static_cast<ByteOffset>(i) * 1048576, 1048576},
                  [&release_order, i](const IoResult&) {
                    release_order.push_back(i);
                  });
  }
  f.sim.run();
  ASSERT_EQ(release_order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(release_order[i], i);
}

TEST(ReducingDevice, ShrinksWrittenBytes) {
  Fixture f;
  ReducerConfig cfg;
  cfg.reduction_ratio = 0.5;
  cfg.encode_us_per_page = 5.0;
  ReducingDevice red(f.sim, f.dev, cfg);
  bool done = false;
  red.submit(IoRequest{1, IoOp::kWrite, 0, 65536}, [&](const IoResult& r) {
    done = true;
    // Caller sees logical sizes.
    EXPECT_EQ(r.bytes, 65536u);
  });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(red.stats().logical_bytes, 65536u);
  EXPECT_EQ(red.stats().physical_bytes, 32768u);
  EXPECT_NEAR(red.stats().savings_ratio(), 0.5, 1e-9);
  // The device itself only saw the reduced volume.
  EXPECT_EQ(f.dev.io_stats().written_bytes, 32768u);
}

TEST(ReducingDevice, RoundsUpToWholePages) {
  Fixture f;
  ReducerConfig cfg;
  cfg.reduction_ratio = 0.9;  // 4 KiB would shrink below one page
  ReducingDevice red(f.sim, f.dev, cfg);
  bool done = false;
  red.submit(IoRequest{1, IoOp::kWrite, 0, 4096},
             [&](const IoResult&) { done = true; });
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(red.stats().physical_bytes, 4096u);  // floor of one page
}

TEST(ReducingDevice, EncodeCostDelaysWrites) {
  Fixture plain;
  Fixture reduced;
  ReducerConfig cfg;
  cfg.reduction_ratio = 0.01;  // nearly no byte savings
  cfg.encode_us_per_page = 50.0;
  ReducingDevice red(reduced.sim, reduced.dev, cfg);

  SimTime plain_lat = 0;
  plain.dev.submit(IoRequest{1, IoOp::kWrite, 0, 16384},
                   [&](const IoResult& r) { plain_lat = r.latency(); });
  plain.sim.run();
  SimTime red_lat = 0;
  red.submit(IoRequest{1, IoOp::kWrite, 0, 16384},
             [&](const IoResult& r) { red_lat = r.latency(); });
  reduced.sim.run();
  // 4 pages x 50 us encode must show up on the critical path.
  EXPECT_GT(red_lat, plain_lat + 150 * kUs);
}

TEST(ReducingDevice, FlushAndTrimPassThrough) {
  Fixture f;
  ReducerConfig cfg;
  ReducingDevice red(f.sim, f.dev, cfg);
  bool flushed = false;
  red.submit(IoRequest{1, IoOp::kFlush, 0, 0},
             [&](const IoResult&) { flushed = true; });
  f.sim.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(red.stats().logical_bytes, 0u);
}

}  // namespace
}  // namespace uc::wl
