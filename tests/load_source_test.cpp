// Tests for the unified LoadSource driver: closed-loop factory equivalence,
// open-loop replay determinism (digest-identical completion streams),
// rate-scaling, slowdown accounting under overload, the contract replay
// checker's rules, and replay-driven tenant/placement scenarios end-to-end.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/block_device.h"
#include "common/units.h"
#include "contract/replay.h"
#include "placement/placement.h"
#include "ssd/ssd_device.h"
#include "tenant/scenarios.h"
#include "workload/load_source.h"
#include "workload/runner.h"
#include "workload/trace.h"

namespace uc {
namespace {

using namespace units;

// Forwards to a real device while folding every completion into an FNV-1a
// digest — "digest-identical completion stream" is literal, not a proxy.
class DigestingDevice : public BlockDevice {
 public:
  explicit DigestingDevice(BlockDevice& inner) : inner_(inner) {}

  const DeviceInfo& info() const override { return inner_.info(); }

  void submit(const IoRequest& req, CompletionFn done) override {
    inner_.submit(req, [this, done = std::move(done)](const IoResult& r) {
      fold(r.id);
      fold(static_cast<std::uint64_t>(r.op));
      fold(r.offset);
      fold(r.bytes);
      fold(static_cast<std::uint64_t>(r.submit_time));
      fold(static_cast<std::uint64_t>(r.complete_time));
      done(r);
    });
  }

  std::uint64_t digest() const { return digest_; }

 private:
  void fold(std::uint64_t v) {
    digest_ ^= v;
    digest_ *= 0x100000001b3ull;
  }

  BlockDevice& inner_;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;
};

wl::TraceGenConfig small_gen() {
  wl::TraceGenConfig cfg;
  cfg.duration = 2 * kSec;
  cfg.base_iops = 1500.0;
  cfg.burst_iops = 6000.0;
  cfg.bursts_per_s = 0.3;
  cfg.write_fraction = 0.7;
  cfg.seed = 77;
  return cfg;
}

ssd::SsdDevice make_ssd(sim::Simulator& sim) {
  return ssd::SsdDevice(sim, ssd::samsung_970pro_scaled(1 * kGiB));
}

TEST(MakeLoadSource, ClosedLoopMatchesDirectJobRunner) {
  wl::LoadSpec spec;
  spec.job.pattern = wl::AccessPattern::kRandom;
  spec.job.io_bytes = 16384;
  spec.job.queue_depth = 8;
  spec.job.total_ops = 2000;
  spec.job.seed = 9;

  std::uint64_t digests[2] = {};
  for (int pass = 0; pass < 2; ++pass) {
    sim::Simulator sim;
    auto ssd = make_ssd(sim);
    DigestingDevice dev(ssd);
    wl::JobStats stats;
    if (pass == 0) {
      stats = wl::JobRunner::run_to_completion(sim, dev, spec.job);
    } else {
      auto source = wl::make_load_source(sim, dev, spec);
      ASSERT_TRUE(source.is_ok());
      EXPECT_FALSE(source.value()->open_loop());
      source.value()->start();
      sim.run();
      ASSERT_TRUE(source.value()->finished());
      stats = source.value()->stats();
      EXPECT_LE(source.value()->backlog_peak(), 8u);
      EXPECT_GT(source.value()->backlog_peak(), 0u);
    }
    EXPECT_EQ(stats.total_ops(), 2000u);
    EXPECT_TRUE(stats.slowdown.empty());  // closed loop records no slowdown
    digests[pass] = dev.digest();
  }
  // The factory's closed-loop path IS a JobRunner: same completion stream.
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(TraceReplayer, DeterministicDigestAcrossRuns) {
  std::uint64_t digests[2] = {};
  for (int pass = 0; pass < 2; ++pass) {
    sim::Simulator sim;
    auto ssd = make_ssd(sim);
    DigestingDevice dev(ssd);
    const auto trace = wl::generate_trace(small_gen(), dev.info());
    wl::TraceReplayer replayer(sim, dev, trace);
    replayer.start();
    sim.run();
    ASSERT_TRUE(replayer.finished());
    EXPECT_EQ(replayer.stats().total_ops(), trace.size());
    digests[pass] = dev.digest();
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(TraceReplayer, RateScaleCompressesTheTimeline) {
  const auto run = [](double rate_scale) {
    sim::Simulator sim;
    auto ssd = make_ssd(sim);
    const auto trace = wl::generate_trace(small_gen(), ssd.info());
    wl::ReplayOptions opt;
    opt.rate_scale = rate_scale;
    wl::TraceReplayer replayer(sim, ssd, trace, opt);
    replayer.start();
    sim.run();
    EXPECT_TRUE(replayer.finished());
    return replayer.stats();
  };
  const auto base = run(1.0);
  const auto warped = run(2.0);
  ASSERT_EQ(base.total_ops(), warped.total_ops());
  ASSERT_EQ(base.total_bytes(), warped.total_bytes());
  // Submissions compress 2x; the (underloaded) SSD keeps up, so the whole
  // run finishes in about half the time and throughput doubles.
  const double span_ratio =
      static_cast<double>(base.last_complete - base.first_submit) /
      static_cast<double>(warped.last_complete - warped.first_submit);
  EXPECT_NEAR(span_ratio, 2.0, 0.1);
  EXPECT_NEAR(warped.throughput_gbs() / base.throughput_gbs(), 2.0, 0.1);
}

TEST(TraceReplayer, MaxEventsCapsTheReplay) {
  sim::Simulator sim;
  auto ssd = make_ssd(sim);
  const auto trace = wl::generate_trace(small_gen(), ssd.info());
  ASSERT_GT(trace.size(), 500u);
  wl::ReplayOptions opt;
  opt.max_events = 500;
  wl::TraceReplayer replayer(sim, ssd, trace, opt);
  replayer.start();
  sim.run();
  EXPECT_TRUE(replayer.finished());
  EXPECT_EQ(replayer.stats().total_ops(), 500u);
}

TEST(TraceReplayer, SlowdownDivergesOnAnOverloadedDevice) {
  // The same trace, replayed at 1x (the SSD keeps up easily) and warped far
  // past the device's service rate: slowdown must detach from per-op
  // latency and the backlog must grow well past any closed-loop depth.
  const auto run = [](double rate_scale, std::uint64_t* backlog) {
    sim::Simulator sim;
    auto ssd = make_ssd(sim);
    auto gen = small_gen();
    gen.base_iops = 20000.0;
    gen.burst_iops = 0.0;
    gen.duration = kSec;
    const auto trace = wl::generate_trace(gen, ssd.info());
    wl::ReplayOptions opt;
    opt.rate_scale = rate_scale;
    wl::TraceReplayer replayer(sim, ssd, trace, opt);
    replayer.start();
    sim.run();
    EXPECT_TRUE(replayer.finished());
    *backlog = replayer.max_inflight();
    return replayer.stats();
  };
  std::uint64_t calm_backlog = 0;
  std::uint64_t hot_backlog = 0;
  const auto calm = run(1.0, &calm_backlog);
  const auto hot = run(50.0, &hot_backlog);
  ASSERT_FALSE(calm.slowdown.empty());
  ASSERT_FALSE(hot.slowdown.empty());
  const auto p99 = [](const wl::JobStats& s) {
    return static_cast<double>(s.slowdown.percentile(99.0));
  };
  EXPECT_GT(p99(hot), 20.0 * p99(calm));
  EXPECT_GT(hot_backlog, 10 * calm_backlog);
  // Slowdown is measured against the intended (scaled) arrival, so for an
  // unfrozen device it coincides with the recorded latency stream.
  EXPECT_EQ(hot.slowdown.percentile(50.0), hot.all_latency.percentile(50.0));
}

TEST(MakeLoadSource, LoadsTheBundledCsvTrace) {
  const std::string path =
      std::string(UC_SOURCE_DIR) + "/tests/data/sample_trace.csv";
  sim::Simulator sim;
  auto ssd = make_ssd(sim);
  wl::LoadSpec spec;
  spec.open_loop = true;
  spec.trace_path = path;
  auto source = wl::make_load_source(sim, ssd, spec);
  ASSERT_TRUE(source.is_ok()) << source.status().message();
  EXPECT_TRUE(source.value()->open_loop());
  source.value()->start();
  sim.run();
  ASSERT_TRUE(source.value()->finished());
  // Header line excluded: every data row replayed.
  EXPECT_EQ(source.value()->stats().total_ops(), 4137u);
  const auto summary = wl::load_source_trace_summary(*source.value());
  EXPECT_EQ(summary.events, 4137u);
  EXPECT_GT(summary.offered_gbs(), 0.0);
}

TEST(MakeLoadSource, BadTracePathFailsCleanly) {
  sim::Simulator sim;
  auto ssd = make_ssd(sim);
  wl::LoadSpec spec;
  spec.open_loop = true;
  spec.trace_path = "/nonexistent/trace.csv";
  EXPECT_FALSE(wl::make_load_source(sim, ssd, spec).is_ok());
}

TEST(MakeLoadSource, TraceEventsMustFitTheDevice) {
  // An unconverted production trace whose offsets exceed the replayed
  // volume must fail with a Status naming the event, not assert deep in
  // the data path.
  const std::string path = ::testing::TempDir() + "/oversized_trace.csv";
  {
    std::vector<wl::TraceEvent> trace(2);
    trace[0] = {1000, IoOp::kWrite, 0, 4096};
    trace[1] = {2000, IoOp::kWrite, 8ull << 30, 4096};  // beyond 1 GiB
    ASSERT_TRUE(wl::save_trace_csv(trace, path).is_ok());
  }
  sim::Simulator sim;
  auto ssd = make_ssd(sim);
  wl::LoadSpec spec;
  spec.open_loop = true;
  spec.trace_path = path;
  const auto source = wl::make_load_source(sim, ssd, spec);
  ASSERT_FALSE(source.is_ok());
  EXPECT_NE(source.status().message().find("event 1"), std::string::npos)
      << source.status().message();
  std::remove(path.c_str());
}

// ------------------------------------------------ contract replay rules --

wl::TraceSummary summary_of(double gbs, double iops, double peak_to_mean,
                            double small_fraction) {
  wl::TraceSummary s;
  s.span_ns = static_cast<SimTime>(10 * kSec);
  s.total_bytes = static_cast<std::uint64_t>(gbs * 10e9);
  s.events = static_cast<std::uint64_t>(iops * 10.0);
  s.peak_to_mean = peak_to_mean;
  s.byte_peak_to_mean = peak_to_mean;  // rule tests burst bytes and events alike
  s.small_io_byte_fraction = small_fraction;
  return s;
}

TEST(EvaluateReplay, FlagsSustainedOverloadAndBursts) {
  contract::ReplayCheckConfig cfg;
  cfg.budget_gbs = 1.0;
  cfg.budget_iops = 100000.0;
  wl::JobStats stats;

  // Sustained overload: offered 1.5x the budget.
  auto v = contract::evaluate_replay(summary_of(1.5, 1000.0, 1.0, 0.0), stats,
                                     10, cfg);
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_EQ(v.violations[0].rule, "offered-load-exceeds-budget");
  EXPECT_NEAR(v.violations[0].severity, 1.5, 0.01);

  // Mean fits, bursts do not.
  v = contract::evaluate_replay(summary_of(0.8, 1000.0, 3.0, 0.0), stats, 10,
                                cfg);
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_EQ(v.violations[0].rule, "bursts-exceed-budget");

  // Healthy: under budget, calm, large I/Os.
  v = contract::evaluate_replay(summary_of(0.5, 1000.0, 1.1, 0.1), stats, 10,
                                cfg);
  EXPECT_TRUE(v.clean());
}

TEST(EvaluateReplay, FlagsSmallIosAndDivergence) {
  contract::ReplayCheckConfig cfg;
  cfg.budget_gbs = 0.0;  // unpublished: budget rules skipped
  wl::JobStats stats;
  auto v = contract::evaluate_replay(summary_of(2.0, 1000.0, 1.0, 0.9), stats,
                                     10, cfg);
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_EQ(v.violations[0].rule, "small-io-dominated");

  // A detached tail above the absolute floor plus a blown backlog.
  stats.slowdown.record_n(1 * units::kMs, 900);
  stats.slowdown.record_n(500 * units::kMs, 100);
  v = contract::evaluate_replay(summary_of(2.0, 1000.0, 1.0, 0.0), stats,
                                100000, cfg);
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_EQ(v.violations[0].rule, "open-loop-divergence");
  EXPECT_GT(v.slowdown_p99_ms, 100.0);
}

TEST(SummarizeTrace, RateScaleCompressesTheOfferedTimeline) {
  sim::Simulator sim;
  auto ssd = make_ssd(sim);
  const auto trace = wl::generate_trace(small_gen(), ssd.info());
  const auto base = wl::summarize_trace(trace);
  const auto warped = wl::summarize_trace(trace, 2.0);
  EXPECT_EQ(warped.events, base.events);
  EXPECT_EQ(warped.total_bytes, base.total_bytes);
  EXPECT_NEAR(warped.offered_gbs(), 2.0 * base.offered_gbs(),
              0.01 * base.offered_gbs());
  EXPECT_NEAR(warped.offered_iops(), 2.0 * base.offered_iops(),
              0.01 * base.offered_iops());
  // Windowed burstiness is re-binned on the warped timeline, not assumed
  // scale-free: a 100 ms window of the warped replay spans 200 ms of the
  // original trace, so bursts average down (never up).
  EXPECT_LE(warped.peak_to_mean, base.peak_to_mean * 1.05);
  EXPECT_GT(warped.byte_peak_to_mean, 0.0);
}

TEST(SummarizeTrace, ByteAndEventBurstinessDiverge) {
  // Steady large writes plus one 100 ms storm of tiny I/Os: the event
  // peak-to-mean spikes while the byte peak-to-mean barely moves — the
  // distinction the bursts-exceed-budget rule judges bytes by.
  std::vector<wl::TraceEvent> trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back({static_cast<SimTime>(i) * 10 * units::kMs, IoOp::kWrite,
                     0, 256 * 1024});
  }
  for (int i = 0; i < 400; ++i) {
    trace.push_back({500 * units::kMs + static_cast<SimTime>(i) * 100'000,
                     IoOp::kWrite, 0, 4096});
  }
  std::sort(trace.begin(), trace.end(),
            [](const wl::TraceEvent& a, const wl::TraceEvent& b) {
              return a.arrival < b.arrival;
            });
  const auto s = wl::summarize_trace(trace);
  EXPECT_GT(s.peak_to_mean, 2.0 * s.byte_peak_to_mean);
}

// -------------------------------------------- replay-driven scenarios --

TEST(ReplayScenario, NoisyNeighbourRunsEndToEnd) {
  tenant::ScenarioOptions opt;
  opt.quick = true;
  opt.replay = true;
  const auto result =
      tenant::run_scenario(tenant::Scenario::kNoisyNeighbor, opt);
  ASSERT_EQ(result.colocated.size(), 3u);
  ASSERT_EQ(result.traces.size(), 3u);
  ASSERT_EQ(result.backlog_peak.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(result.traces[i].events, 0u);
    EXPECT_EQ(result.colocated[i].total_ops(), result.traces[i].events);
    EXPECT_FALSE(result.colocated[i].slowdown.empty());
    EXPECT_GT(result.report.tenants[i].slowdown_p99_us, 0.0);
  }
  // Open-loop arrivals, same story: colocation inflates the victims' tail.
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_GT(result.report.tenants[i].interference, 1.2);
  }
}

TEST(ReplayScenario, PerTenantTraceFileFeedsTenantZero) {
  const std::string path =
      std::string(UC_SOURCE_DIR) + "/tests/data/sample_trace.csv";
  tenant::ScenarioOptions opt;
  opt.quick = true;
  opt.replay = true;
  opt.solo_baselines = false;
  opt.trace_paths = {path};  // hog replays the bundled CSV
  const auto result =
      tenant::run_scenario(tenant::Scenario::kNoisyNeighbor, opt);
  EXPECT_EQ(result.colocated[0].total_ops(), 4137u);
  EXPECT_EQ(result.traces[0].events, 4137u);
  // The other tenants keep their synthetic role traces.
  EXPECT_GT(result.traces[1].events, 0u);
}

TEST(ReplayScenario, RateScaleRaisesOfferedLoad) {
  tenant::ScenarioOptions calm;
  calm.quick = true;
  calm.replay = true;
  calm.solo_baselines = false;
  auto hot = calm;
  hot.rate_scale = 2.0;
  const auto a = tenant::run_scenario(tenant::Scenario::kFairShare, calm);
  const auto b = tenant::run_scenario(tenant::Scenario::kFairShare, hot);
  // Same events in half the (submission) time.
  EXPECT_EQ(a.colocated[0].total_ops(), b.colocated[0].total_ops());
  EXPECT_LT(b.makespan, a.makespan);
}

TEST(ReplayPlacement, MigrationRunsUnderReplayLoad) {
  essd::EssdConfig base = essd::aws_io2_profile(64 * kMiB);
  base.cluster.spare_pool_bytes = 256 * kMiB;
  std::vector<tenant::TenantSpec> tenants;
  for (int i = 0; i < 3; ++i) {
    tenant::TenantSpec t;
    t.name = std::string("replayer-") + static_cast<char>('a' + i);
    t.capacity_bytes = 64 * kMiB;
    t.qos.bw_bytes_per_s = 1.0e9;
    t.load.job.io_bytes = 16384;
    t.load.job.duration = kSec;
    t.load.job.seed = 31 + static_cast<std::uint64_t>(i);
    t.load.open_loop = true;
    t.load.gen = wl::derive_trace_gen(t.load.job, 3000.0);
    tenants.push_back(std::move(t));
  }
  placement::PlacementConfig cfg;
  cfg.clusters = 2;
  cfg.policy = placement::Policy::kPack;  // unbounded: all on cluster 0
  cfg.rebalance_watermark = 1.2;
  cfg.rebalance_interval = 5 * kMs;

  sim::Simulator sim;
  placement::MultiClusterHost host(sim, base, tenants, cfg);
  const auto result = host.run();
  ASSERT_GE(result.migrations.size(), 1u);
  EXPECT_EQ(result.final_cluster[result.migrations[0].tenant], 1);
  for (std::size_t i = 0; i < 3; ++i) {
    // Nobody lost I/O across the cutover, open loop included.
    EXPECT_EQ(result.stats[i].total_ops(), result.traces[i].events);
    EXPECT_GT(result.traces[i].events, 0u);
  }
  EXPECT_TRUE(host.cluster(0).check_invariants());
  EXPECT_TRUE(host.cluster(1).check_invariants());
}

}  // namespace
}  // namespace uc
