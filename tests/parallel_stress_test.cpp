/// \file parallel_stress_test.cpp
/// Persistent-pool stress: the epoch-sliced engine calls `run_epoch`
/// thousands of times per fleet run (one per slice), so the executor must
/// reuse its construction-time workers instead of spawning per epoch, stay
/// correct when shard bodies have wildly uneven runtimes, and keep its
/// barrier/exception machinery sound over long epoch streams.  Runs under
/// TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/parallel.h"
#include "sim/simulator.h"

namespace uc::sim {
namespace {

TEST(ParallelExecutorStress, ThousandsOfEpochsSpawnNoNewThreads) {
  constexpr int kThreads = 4;
  constexpr std::size_t kEpochs = 4000;
  ParallelExecutor exec(kThreads);

  // Every thread that ever runs a shard body registers its id.  The pool
  // contract: all of them exist at construction — the set never grows past
  // `threads()` no matter how many epochs run, which is impossible with
  // per-epoch std::thread spawning (fresh ids every epoch).
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::uint64_t checksum = 0;

  for (std::size_t e = 0; e < kEpochs; ++e) {
    // Vary the shard count so some epochs leave workers idle, some make
    // them claim several shards each.
    const std::size_t shards = 1 + e % 9;
    std::vector<std::uint64_t> out(shards, 0);
    exec.run_epoch(shards, [&](std::size_t s) {
      {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      }
      // Uneven bodies: shard s of epoch e runs a deterministic simulator
      // burst whose size swings by ~50x across shards, so the one-shard-
      // at-a-time claiming actually interleaves.
      Simulator sim;
      std::uint64_t acc = 0;
      const std::uint64_t events = 5 + 251 * ((e + s) % 7 == 0 ? s + 1 : 1);
      for (std::uint64_t i = 0; i < events; ++i) {
        sim.schedule_at(i % 97, [&acc, i] { acc = acc * 31 + i; });
      }
      sim.run();
      out[s] = acc ^ sim.events_processed();
    });
    for (const std::uint64_t v : out) checksum = checksum * 1099511628211ull ^ v;
  }

  EXPECT_EQ(exec.epochs(), kEpochs);
  EXPECT_LE(seen.size(), static_cast<std::size_t>(kThreads));
  EXPECT_GE(seen.size(), 2u);  // the pool genuinely ran work off-coordinator
  EXPECT_NE(checksum, 0u);

  // The same stream at one thread gives the same checksum: shard results
  // never depend on which pool worker claimed them.
  ParallelExecutor solo(1);
  std::uint64_t solo_checksum = 0;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const std::size_t shards = 1 + e % 9;
    std::vector<std::uint64_t> out(shards, 0);
    solo.run_epoch(shards, [&](std::size_t s) {
      Simulator sim;
      std::uint64_t acc = 0;
      const std::uint64_t events = 5 + 251 * ((e + s) % 7 == 0 ? s + 1 : 1);
      for (std::uint64_t i = 0; i < events; ++i) {
        sim.schedule_at(i % 97, [&acc, i] { acc = acc * 31 + i; });
      }
      sim.run();
      out[s] = acc ^ sim.events_processed();
    });
    for (const std::uint64_t v : out) {
      solo_checksum = solo_checksum * 1099511628211ull ^ v;
    }
  }
  EXPECT_EQ(checksum, solo_checksum);
}

TEST(ParallelExecutorStress, ExceptionEpochsDoNotPoisonThePool) {
  // Interleave throwing and clean epochs for a long stretch: every failure
  // must surface at the barrier, and the pool must be fully reusable on the
  // very next epoch.
  ParallelExecutor exec(4);
  constexpr std::size_t kEpochs = 500;
  std::atomic<std::uint64_t> bodies{0};
  std::size_t failures = 0;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const bool fails = e % 3 == 0;
    try {
      exec.run_epoch(6, [&bodies, fails](std::size_t s) {
        bodies.fetch_add(1, std::memory_order_relaxed);
        if (fails && s == 2) throw std::runtime_error("boom");
      });
    } catch (const std::runtime_error&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, (kEpochs + 2) / 3);
  // Every shard of every epoch ran, failed epochs included.
  EXPECT_EQ(bodies.load(), kEpochs * 6u);
  EXPECT_EQ(exec.epochs(), kEpochs);
}

}  // namespace
}  // namespace uc::sim
