// Tests for the QoS gate: byte-budget and IOPS enforcement, I/O-unit
// normalization, FIFO admission, and burst behaviour — the Observation 4
// mechanism.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "essd/qos.h"

namespace uc::essd {
namespace {

using namespace units;

QosConfig tight_config() {
  QosConfig cfg;
  cfg.bw_bytes_per_s = 1e9;   // 1 GB/s
  cfg.bw_burst_s = 0.001;     // 1 MB burst
  cfg.iops = 1000.0;
  cfg.iops_burst_s = 0.01;    // 10 ops burst
  cfg.iops_unit_bytes = 256 * 1024;
  return cfg;
}

TEST(QosGate, AdmitsImmediatelyWithinBudget) {
  sim::Simulator sim;
  QosGate gate(sim, tight_config());
  bool admitted = false;
  gate.admit(4096, [&] { admitted = true; });
  EXPECT_TRUE(admitted);  // synchronous when tokens available
  EXPECT_EQ(gate.stats().admitted, 1u);
  EXPECT_EQ(gate.stats().throttled, 0u);
}

TEST(QosGate, ByteBudgetPacesLargeTransfers) {
  sim::Simulator sim;
  auto cfg = tight_config();
  cfg.iops = 1e6;  // IOPS must not bind in this byte-pacing test
  QosGate gate(sim, cfg);
  std::vector<SimTime> times;
  // 10 x 1 MB = 10 MB against a 1 MB burst + 1 GB/s refill: the tail ops
  // must be paced at ~1 ms per MB.
  for (int i = 0; i < 10; ++i) {
    gate.admit(1000000, [&] { times.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(times.size(), 10u);
  EXPECT_EQ(times.front(), 0u);
  // Total: 10 MB minus the 1 MB burst at 1 GB/s ~= 9 ms.
  EXPECT_NEAR(static_cast<double>(times.back()), 9e6, 1e6);
}

TEST(QosGate, IopsBudgetPacesSmallOps) {
  sim::Simulator sim;
  auto cfg = tight_config();
  cfg.bw_bytes_per_s = 1e12;  // bytes never bind
  cfg.bw_burst_s = 1.0;
  QosGate gate(sim, cfg);
  int completed = 0;
  SimTime last = 0;
  for (int i = 0; i < 110; ++i) {
    gate.admit(4096, [&] {
      ++completed;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(completed, 110);
  // 110 ops against 10 burst + 1000/s: ~100 ms.
  EXPECT_NEAR(static_cast<double>(last), 100e6, 10e6);
  EXPECT_GT(gate.stats().throttled, 0u);
  EXPECT_GT(gate.stats().throttle_ns, 0u);
}

TEST(QosGate, LargeOpsCostMultipleIopsTokens) {
  sim::Simulator sim;
  auto cfg = tight_config();
  cfg.bw_bytes_per_s = 1e12;
  cfg.bw_burst_s = 1.0;
  cfg.iops = 100.0;
  cfg.iops_burst_s = 0.05;  // 5-token burst
  QosGate gate(sim, cfg);
  // A 1 MiB op costs ceil(1 MiB / 256 KiB) = 4 tokens.
  SimTime second_at = 0;
  gate.admit(1 << 20, [] {});
  gate.admit(1 << 20, [&] { second_at = sim.now(); });
  sim.run();
  // First op leaves 1 token; the second needs 3 more at 100/s: ~30 ms.
  EXPECT_GT(second_at, 25 * kMs);
  EXPECT_LT(second_at, 45 * kMs);
}

TEST(QosGate, OpsLargerThanBurstStillMakeProgress) {
  // Regression: a request whose token cost exceeds the bucket capacity
  // must be admitted once the bucket fills, not spin forever.
  sim::Simulator sim;
  auto cfg = tight_config();
  cfg.bw_bytes_per_s = 1e12;
  cfg.bw_burst_s = 1.0;
  cfg.iops = 100.0;
  cfg.iops_burst_s = 0.01;  // capacity 1 token < 4-token ops
  QosGate gate(sim, cfg);
  int completed = 0;
  SimTime last = 0;
  for (int i = 0; i < 5; ++i) {
    gate.admit(1 << 20, [&] {
      ++completed;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(completed, 5);
  // 5 ops x 4 tokens at 100/s ~= 200 ms of pacing (debt accounting).
  EXPECT_GT(last, 120 * kMs);
  EXPECT_LT(last, 300 * kMs);
}

TEST(QosGate, AdmissionIsFifo) {
  sim::Simulator sim;
  QosGate gate(sim, tight_config());
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    gate.admit(1000000, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[i], i);
}

TEST(QosGate, TracksQueueDepthAndAdmissionWait) {
  sim::Simulator sim;
  auto cfg = tight_config();
  cfg.iops = 1e6;  // byte bucket binds
  QosGate gate(sim, cfg);
  int admitted = 0;
  for (int i = 0; i < 8; ++i) {
    gate.admit(1000000, [&] { ++admitted; });
  }
  // First op passed on burst; the rest are pending right now.
  EXPECT_EQ(gate.queue_depth(), 7u);
  EXPECT_EQ(gate.stats().queue_depth_peak, 7u);
  sim.run();
  EXPECT_EQ(admitted, 8);
  EXPECT_EQ(gate.queue_depth(), 0u);         // drained
  EXPECT_EQ(gate.stats().queue_depth_peak, 7u);  // high-water mark sticks
  // Every admit recorded a wait sample; the tail wait is the pacing cost
  // (~1 ms per queued MB at 1 GB/s), far above the immediate admits.
  EXPECT_EQ(gate.stats().wait.count(), 8u);
  EXPECT_GT(gate.stats().p99_wait_ns(), 1 * kMs);
  EXPECT_EQ(gate.stats().wait.percentile(1.0), 0u);  // first op never waited
}

TEST(QosGate, PriorityPolicyAdmitsReadsBeforeQueuedWrites) {
  sim::Simulator sim;
  auto cfg = tight_config();
  cfg.iops = 1e6;
  sched::SchedulerConfig sched_cfg;
  sched_cfg.policy = sched::Policy::kPrio;
  QosGate gate(sim, cfg, sched_cfg);
  std::vector<int> order;
  // Exhaust the burst, then queue writes before a read.
  gate.admit(1000000, [&] { order.push_back(-1); });
  for (int i = 0; i < 3; ++i) {
    gate.admit(1000000,
               sched::SchedTag{0, sched::IoClass::kFgWrite, 0},
               [&order, i] { order.push_back(i); });
  }
  gate.admit(1000000, sched::SchedTag{0, sched::IoClass::kFgRead, 0},
             [&order] { order.push_back(100); });
  sim.run();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], -1);
  // The head-of-line write was already selected (and budget-checked) when
  // the read arrived, but the read jumps every uncommitted write.
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 100);
  EXPECT_EQ(order[3], 1);
  EXPECT_EQ(order[4], 2);
}

TEST(QosGate, SharedBudgetAcrossReadAndWriteStreams) {
  // Observation 4 in miniature: two competing streams drawing from the same
  // byte bucket can jointly never exceed the budget.
  sim::Simulator sim;
  auto cfg = tight_config();
  cfg.iops = 1e9;  // IOPS never binds
  cfg.iops_burst_s = 0.001;
  QosGate gate(sim, cfg);
  std::uint64_t bytes_admitted = 0;
  SimTime last = 0;
  for (int i = 0; i < 200; ++i) {
    gate.admit(262144, [&] {
      bytes_admitted += 262144;
      last = sim.now();
    });
  }
  sim.run();
  const double gbs = static_cast<double>(bytes_admitted) /
                     static_cast<double>(last);
  EXPECT_NEAR(gbs, 1.0, 0.08);
}

}  // namespace
}  // namespace uc::essd
