// Tests for the throughput timeline and the token bucket (the ESSD budget
// enforcement mechanism), including a conservation property sweep.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "common/timeline.h"
#include "common/token_bucket.h"
#include "common/units.h"

namespace uc {
namespace {

using namespace units;

TEST(Timeline, BinsBytesByCompletionTime) {
  ThroughputTimeline tl(kSec);
  tl.record(100 * kMs, 500000000);   // bin 0: 0.5 GB
  tl.record(1500 * kMs, 250000000);  // bin 1: 0.25 GB
  tl.record(1600 * kMs, 250000000);  // bin 1: +0.25 GB
  const auto series = tl.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].gb_per_s, 0.5);
  EXPECT_DOUBLE_EQ(series[1].gb_per_s, 0.5);
  EXPECT_DOUBLE_EQ(series[0].time_s, 0.0);
  EXPECT_DOUBLE_EQ(series[1].time_s, 1.0);
  EXPECT_EQ(tl.total_bytes(), 1000000000u);
  EXPECT_EQ(tl.total_ops(), 3u);
}

TEST(Timeline, EmptyBinsAreVisible) {
  ThroughputTimeline tl(kSec);
  tl.record(0, 1000);
  tl.record(3 * kSec + 1, 1000);
  const auto series = tl.series();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[1].bytes, 0u);
  EXPECT_EQ(series[2].bytes, 0u);
}

TEST(Timeline, SmoothingAveragesWindow) {
  ThroughputTimeline tl(kSec);
  // Alternating 1 GB / 0 GB bins.
  for (int i = 0; i < 10; i += 2) {
    tl.record(static_cast<SimTime>(i) * kSec + 1, 1000000000ull);
  }
  tl.record(9 * kSec + 1, 0);  // extend to 10 bins
  const auto smooth = tl.smoothed_series(2);
  // After the first bin, every 2-bin window holds exactly one 1 GB bin.
  for (std::size_t i = 1; i < smooth.size(); ++i) {
    EXPECT_NEAR(smooth[i].gb_per_s, 0.5, 1e-9) << "bin " << i;
  }
}

TEST(TokenBucket, StartsFullAndDrains) {
  TokenBucket bucket(1000.0, 500.0);  // 1000/s, burst 500
  EXPECT_TRUE(bucket.try_consume(0, 500.0));
  EXPECT_FALSE(bucket.try_consume(0, 1.0));
  // After 100 ms, 100 tokens accrued.
  EXPECT_TRUE(bucket.try_consume(100 * kMs, 100.0));
  EXPECT_FALSE(bucket.try_consume(100 * kMs, 1.0));
}

TEST(TokenBucket, CapsAtCapacity) {
  TokenBucket bucket(1000.0, 200.0);
  ASSERT_TRUE(bucket.try_consume(0, 200.0));
  // A long idle period must not accrue beyond the burst capacity.
  EXPECT_NEAR(bucket.tokens(100 * kSec), 200.0, 1e-9);
}

TEST(TokenBucket, DelayUntilAvailable) {
  TokenBucket bucket(1000.0, 100.0);
  ASSERT_TRUE(bucket.try_consume(0, 100.0));
  const SimTime delay = bucket.delay_until_available(0, 50.0);
  // 50 tokens at 1000/s = 50 ms.
  EXPECT_NEAR(static_cast<double>(delay), 50e6, 1e4);
  EXPECT_TRUE(bucket.try_consume(delay, 50.0));
}

TEST(TokenBucket, DebtAccounting) {
  TokenBucket bucket(1000.0, 100.0);
  bucket.consume_with_debt(0, 300.0);
  EXPECT_LT(bucket.tokens(0), 0.0);
  // Debt of 200 at 1000/s: ~200 ms until 0, 250 ms until 50 available.
  EXPECT_NEAR(static_cast<double>(bucket.delay_until_available(0, 50.0)),
              250e6, 1e5);
}

TEST(TokenBucket, RateRetarget) {
  TokenBucket bucket(1000.0, 100.0);
  ASSERT_TRUE(bucket.try_consume(0, 100.0));
  bucket.set_rate_per_s(0, 100.0);
  // Now refill is 10x slower.
  EXPECT_FALSE(bucket.try_consume(100 * kMs, 50.0));
  EXPECT_TRUE(bucket.try_consume(kSec, 50.0));
}

// Conservation property: over any admission pattern, admitted tokens can
// never exceed capacity + rate * elapsed.
class TokenConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenConservation, NeverOverAdmits) {
  Rng rng(GetParam());
  const double rate = 5000.0;
  const double capacity = 1000.0;
  TokenBucket bucket(rate, capacity);
  double admitted = 0.0;
  SimTime now = 0;
  for (int i = 0; i < 20000; ++i) {
    now += rng.uniform_range(0, 200 * kUs);
    const double want = static_cast<double>(rng.uniform_range(1, 400));
    if (bucket.try_consume(now, want)) admitted += want;
    const double allowance =
        capacity + rate * static_cast<double>(now) / 1e9 + 1e-6;
    ASSERT_LE(admitted, allowance) << "at t=" << now;
  }
  // The bucket must not be uselessly strict either: with heavy demand the
  // admitted volume should approach the allowance.
  EXPECT_GT(admitted,
            0.8 * (capacity + rate * static_cast<double>(now) / 1e9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenConservation,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace uc
