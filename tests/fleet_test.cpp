// Fleet subsystem tests: the seeded generator's determinism and population
// shape (lognormal sizes, Zipf heat, churn windows), thread-count-invariant
// execution (identical per-shard digests at 1/2/4 worker threads), the
// interference-aware policy's planning signal, and the migration budget's
// hard bounds on control-plane churn.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "fleet/fleet.h"
#include "placement/placement.h"

namespace uc::fleet {
namespace {

using namespace units;

// Small enough to run in seconds, big enough to exercise skew and churn.
FleetSpec small_spec() {
  FleetSpec spec;
  spec.clusters = 4;
  spec.tenants = 16;
  spec.seed = 11;
  spec.duration = 150 * kMs;
  spec.diurnal_period = 80 * kMs;
  spec.mean_iops = 400.0;
  spec.max_tenant_iops = 4000.0;
  spec.burst_iops = 2000.0;
  return spec;
}

TEST(GenerateFleet, SameSeedSameFleet) {
  const FleetSpec spec = small_spec();
  const GeneratedFleet a = generate_fleet(spec);
  const GeneratedFleet b = generate_fleet(spec);

  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  EXPECT_EQ(a.total_capacity_bytes, b.total_capacity_bytes);
  EXPECT_EQ(a.churned_tenants, b.churned_tenants);
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].name, b.tenants[i].name);
    EXPECT_EQ(a.tenants[i].capacity_bytes, b.tenants[i].capacity_bytes);
    EXPECT_EQ(a.tenants[i].load.gen.seed, b.tenants[i].load.gen.seed);
    EXPECT_DOUBLE_EQ(a.tenants[i].load.gen.base_iops,
                     b.tenants[i].load.gen.base_iops);
    EXPECT_EQ(a.info[i].heat_rank, b.info[i].heat_rank);
    EXPECT_EQ(a.info[i].arrive, b.info[i].arrive);
    EXPECT_EQ(a.info[i].depart, b.info[i].depart);
  }

  // A different seed draws a different population.
  FleetSpec other = spec;
  other.seed = 12;
  const GeneratedFleet c = generate_fleet(other);
  bool differs = c.total_capacity_bytes != a.total_capacity_bytes;
  for (std::size_t i = 0; !differs && i < a.tenants.size(); ++i) {
    differs = c.tenants[i].capacity_bytes != a.tenants[i].capacity_bytes ||
              c.info[i].heat_rank != a.info[i].heat_rank;
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateFleet, PopulationShape) {
  FleetSpec spec = small_spec();
  spec.tenants = 128;
  const GeneratedFleet fleet = generate_fleet(spec);

  // Capacities: in range, MiB-rounded.
  for (const auto& t : fleet.tenants) {
    EXPECT_GE(t.capacity_bytes, spec.min_capacity_bytes);
    EXPECT_LE(t.capacity_bytes, spec.max_capacity_bytes);
    EXPECT_EQ(t.capacity_bytes % kMiB, 0u);
    EXPECT_EQ(t.precondition_bytes, t.capacity_bytes);
    EXPECT_TRUE(t.load.open_loop);
  }

  // Zipf heat: every rate respects the cap, the hottest rank carries the
  // largest rate, and the hottest 10% of tenants offer well more than an
  // even share of the fleet's IOPS.
  double total = 0.0, rank0 = 0.0;
  std::vector<double> rates;
  for (const auto& info : fleet.info) {
    EXPECT_LE(info.iops, spec.max_tenant_iops + 1e-9);
    EXPECT_GT(info.iops, 0.0);
    total += info.iops;
    if (info.heat_rank == 0) rank0 = info.iops;
    rates.push_back(info.iops);
  }
  std::sort(rates.begin(), rates.end(), std::greater<>());
  EXPECT_DOUBLE_EQ(rates.front(), rank0);
  double top_decile = 0.0;
  for (std::size_t i = 0; i < rates.size() / 10; ++i) top_decile += rates[i];
  EXPECT_GT(top_decile / total, 2.0 * 0.1);

  // Churn: the count matches the flags, windows sit strictly inside the
  // run, and full-run tenants span it exactly.
  int churned = 0;
  for (std::size_t i = 0; i < fleet.info.size(); ++i) {
    const auto& info = fleet.info[i];
    const auto& gen = fleet.tenants[i].load.gen;
    EXPECT_EQ(gen.start_offset, info.arrive);
    EXPECT_EQ(gen.duration, info.depart - info.arrive);
    if (info.churned) {
      ++churned;
      EXPECT_GT(info.arrive, 0);
      EXPECT_LT(info.depart, spec.duration);
      EXPECT_LT(info.arrive, info.depart);
    } else {
      EXPECT_EQ(info.arrive, 0);
      EXPECT_EQ(info.depart, spec.duration);
    }
  }
  EXPECT_EQ(churned, fleet.churned_tenants);
  // ~25% of 128 with generous slack.
  EXPECT_GT(fleet.churned_tenants, 8);
  EXPECT_LT(fleet.churned_tenants, 64);

  FleetSpec no_churn = spec;
  no_churn.churn_fraction = 0.0;
  EXPECT_EQ(generate_fleet(no_churn).churned_tenants, 0);
}

TEST(GenerateFleet, InterferencePolicySeesTheHeat) {
  const GeneratedFleet fleet = generate_fleet(small_spec());
  // The planning signal orders tenants by heat, not bytes: the hottest
  // tenant's expected offered load dominates the coldest's.
  double hottest = 0.0, coldest = 0.0;
  for (std::size_t i = 0; i < fleet.tenants.size(); ++i) {
    const double bps = placement::expected_offered_bps(fleet.tenants[i]);
    EXPECT_GT(bps, 0.0);
    if (fleet.info[i].heat_rank == 0) hottest = bps;
    if (fleet.info[i].heat_rank == fleet.tenants.size() - 1) coldest = bps;
  }
  EXPECT_GT(hottest, 2.0 * coldest);
}

TEST(RunFleet, ThreadCountInvariant) {
  const GeneratedFleet fleet = generate_fleet(small_spec());
  const FleetReport one = run_fleet(fleet, {.threads = 1});
  const FleetReport two = run_fleet(fleet, {.threads = 2});
  const FleetReport four = run_fleet(fleet, {.threads = 4});

  ASSERT_FALSE(one.digests.empty());
  EXPECT_EQ(one.digests, two.digests);
  EXPECT_EQ(one.digests, four.digests);
  EXPECT_EQ(one.sim_events, two.sim_events);
  EXPECT_EQ(one.sim_events, four.sim_events);
  EXPECT_EQ(one.makespan, four.makespan);
  EXPECT_DOUBLE_EQ(one.worst_p999_us, four.worst_p999_us);

  // The run actually measured a fleet.
  EXPECT_EQ(one.active_tenants, 16u);
  EXPECT_GT(one.worst_p999_us, 0.0);
  EXPECT_GE(one.worst_p999_us, one.mean_p999_us);
  EXPECT_GT(one.jain_clusters, 0.0);
  EXPECT_LE(one.jain_clusters, 1.0);

  // Busy accounting: one block per cluster, class slices within the total.
  ASSERT_EQ(one.raw.busy.size(), 4u);
  SimTime busy_total = 0;
  for (const auto& b : one.raw.busy) {
    busy_total += b.busy_ns;
    SimTime classes = 0;
    for (const auto ns : b.class_busy_ns) classes += ns;
    EXPECT_LE(classes, b.busy_ns);
  }
  EXPECT_GT(busy_total, 0);
}

TEST(RunFleet, MigrationBudgetBoundsChurn) {
  FleetSpec spec = small_spec();
  spec.tenants = 12;
  spec.rebalance_watermark = 1.05;
  spec.rebalance_interval = 10 * kMs;
  spec.budget.max_concurrent = 2;
  spec.budget.max_total = 3;
  spec.budget.copy_bandwidth_bps = 200e6;

  const FleetReport rep = run_fleet(spec, {.threads = 1});
  EXPECT_LE(rep.peak_concurrent_migrations, 2);
  EXPECT_LE(rep.migrations, 3);
  for (const auto& m : rep.raw.migrations) {
    EXPECT_NE(m.from_cluster, m.to_cluster);
    EXPECT_EQ(rep.raw.final_cluster[m.tenant], m.to_cluster);
  }
  // A rebalancing fleet runs the epoch-sliced engine at every thread count,
  // so threaded runs digest identically to the one-thread sliced run.
  const FleetReport threaded = run_fleet(spec, {.threads = 4});
  EXPECT_EQ(rep.digests, threaded.digests);
  EXPECT_EQ(rep.raw.sliced.slices, threaded.raw.sliced.slices);
  EXPECT_EQ(rep.raw.sliced.fusions, threaded.raw.sliced.fusions);
  EXPECT_EQ(rep.raw.sliced.splits, threaded.raw.sliced.splits);
  if (rep.migrations > 0) {
    EXPECT_GE(rep.raw.sliced.fusions, 1u);
    EXPECT_GE(rep.raw.sliced.max_group_clusters, 2);
  }
}

}  // namespace
}  // namespace uc::fleet
