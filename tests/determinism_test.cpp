// Reproducibility guarantees: identical seeds must replay bit-identical
// experiments on every device family — including multi-tenant shared
// clusters; different seeds must diverge.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/digest.h"
#include "common/units.h"
#include "contract/replay.h"
#include "essd/essd_device.h"
#include "fleet/fleet.h"
#include "placement/placement.h"
#include "ssd/ssd_device.h"
#include "tenant/scenarios.h"
#include "tenant/tenant.h"
#include "workload/runner.h"

namespace uc {
namespace {

using namespace units;

wl::JobStats run_ssd(std::uint64_t job_seed) {
  sim::Simulator sim;
  ssd::SsdDevice dev(sim, ssd::samsung_970pro_scaled(1 * kGiB));
  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  spec.write_ratio = 0.5;
  spec.total_ops = 3000;
  spec.seed = job_seed;
  return wl::JobRunner::run_to_completion(sim, dev, spec);
}

wl::JobStats run_essd(std::uint64_t job_seed) {
  sim::Simulator sim;
  essd::EssdDevice dev(sim, essd::aws_io2_profile(1 * kGiB));
  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 16384;
  spec.queue_depth = 4;
  spec.total_ops = 2000;
  spec.seed = job_seed;
  return wl::JobRunner::run_to_completion(sim, dev, spec);
}

TEST(Determinism, SsdRunsAreBitIdentical) {
  const auto a = run_ssd(42);
  const auto b = run_ssd(42);
  EXPECT_EQ(a.total_ops(), b.total_ops());
  EXPECT_EQ(a.last_complete, b.last_complete);
  EXPECT_EQ(a.all_latency.count(), b.all_latency.count());
  EXPECT_DOUBLE_EQ(a.all_latency.mean(), b.all_latency.mean());
  EXPECT_EQ(a.all_latency.percentile(99.9), b.all_latency.percentile(99.9));
  EXPECT_EQ(a.write_bytes, b.write_bytes);
}

TEST(Determinism, EssdRunsAreBitIdentical) {
  const auto a = run_essd(1234);
  const auto b = run_essd(1234);
  EXPECT_EQ(a.last_complete, b.last_complete);
  EXPECT_DOUBLE_EQ(a.all_latency.mean(), b.all_latency.mean());
  EXPECT_EQ(a.all_latency.max(), b.all_latency.max());
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_ssd(1);
  const auto b = run_ssd(2);
  // Different offset streams and jitter draws: timings cannot coincide.
  EXPECT_NE(a.last_complete, b.last_complete);
}

tenant::HostResult run_three_tenants(std::uint64_t seed) {
  using namespace units;
  essd::EssdConfig base = essd::aws_io2_profile(64 * kMiB);
  base.cluster.spare_pool_bytes = 192 * kMiB;
  std::vector<tenant::TenantSpec> tenants(3);
  for (int i = 0; i < 3; ++i) {
    tenants[static_cast<std::size_t>(i)].name = "t" + std::to_string(i);
    tenants[static_cast<std::size_t>(i)].capacity_bytes = 64 * kMiB;
    tenants[static_cast<std::size_t>(i)].qos.bw_bytes_per_s = 1.0e9;
    auto& job = tenants[static_cast<std::size_t>(i)].load.job;
    job.pattern =
        i == 2 ? wl::AccessPattern::kSequential : wl::AccessPattern::kRandom;
    job.io_bytes = i == 0 ? 4096u : 65536u;
    job.queue_depth = 2 + i;
    // Tenant 0 runs a mixed job so the seed steers the op sequence itself
    // (pure-ratio jobs only reseed their offsets, which a symmetric idle
    // cluster can absorb without timing divergence).
    job.write_ratio = i == 0 ? 0.5 : (i == 1 ? 0.0 : 1.0);
    job.total_ops = 800;
    job.seed = seed + static_cast<std::uint64_t>(i);
  }
  sim::Simulator sim;
  tenant::SharedClusterHost host(sim, base, tenants);
  return host.run();
}

TEST(Determinism, ThreeTenantSharedClusterIsBitIdentical) {
  const auto a = run_three_tenants(4242);
  const auto b = run_three_tenants(4242);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].last_complete, b.stats[i].last_complete) << i;
    EXPECT_EQ(a.stats[i].all_latency.count(), b.stats[i].all_latency.count());
    EXPECT_DOUBLE_EQ(a.stats[i].all_latency.mean(),
                     b.stats[i].all_latency.mean());
    EXPECT_EQ(a.stats[i].all_latency.max(), b.stats[i].all_latency.max());
    EXPECT_EQ(a.stats[i].write_bytes, b.stats[i].write_bytes);
    EXPECT_EQ(a.stats[i].read_bytes, b.stats[i].read_bytes);
  }
}

// The sched refactor's contract: under the default FIFO policy the entire
// request path (QoS gate, frontend pipe, NIC pipes, node pipelines,
// cleaner) must reproduce the pre-refactor simulator bit for bit.  These
// digests were captured from the seed tree before `src/sched/` existed; a
// change here means the FIFO fast path is no longer the identity.
TEST(Determinism, FifoDigestsMatchPreSchedSeed) {
  const auto r = run_three_tenants(4242);
  EXPECT_EQ(r.makespan, 137686008u);
  ASSERT_EQ(r.stats.size(), 3u);
  EXPECT_EQ(r.stats[0].last_complete, 137686008u);
  EXPECT_EQ(r.stats[1].last_complete, 129940945u);
  EXPECT_EQ(r.stats[2].last_complete, 99521141u);
  EXPECT_EQ(r.stats[0].all_latency.max(), 519085u);
  EXPECT_EQ(r.stats[1].all_latency.max(), 606057u);
  EXPECT_EQ(r.stats[2].all_latency.max(), 602528u);
  EXPECT_DOUBLE_EQ(r.stats[0].all_latency.mean(), 344096.54249999998);
  EXPECT_DOUBLE_EQ(r.stats[1].all_latency.mean(), 486685.46124999999);
  EXPECT_DOUBLE_EQ(r.stats[2].all_latency.mean(), 496495.08624999999);
  EXPECT_EQ(r.stats[0].write_bytes, 1744896u);
  EXPECT_EQ(r.stats[0].read_bytes, 1531904u);
  EXPECT_EQ(r.stats[1].read_bytes, 52428800u);
  EXPECT_EQ(r.stats[2].write_bytes, 52428800u);
}

TEST(Determinism, SoloEssdDigestMatchesPreSchedSeed) {
  const auto s = run_essd(1234);
  EXPECT_EQ(s.last_complete, 187141779u);
  EXPECT_EQ(s.all_latency.max(), 440074u);
  EXPECT_DOUBLE_EQ(s.all_latency.mean(), 374043.842);
}

// The mapping refactor's contract: with the default page-map policy the
// FTL must reproduce the pre-MappingPolicy tree bit for bit.  The digest
// covers the entire L2P table (slot + stamp per page) plus job latencies
// and GC/flash counters after a GC-heavy mixed job, so any behavioral
// drift in the extracted interface — an extra flash read, a reordered
// event, a stats-driven branch — lands here.  Captured at the commit
// immediately before the MappingPolicy extraction.
std::uint64_t ssd_mapping_digest() {
  sim::Simulator sim;
  ssd::SsdDevice dev(sim, ssd::samsung_970pro_scaled(1 * kGiB));

  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 65536;
  spec.queue_depth = 16;
  spec.write_ratio = 0.7;
  spec.total_bytes = 4096 * kMiB;
  spec.region_bytes = 256 * kMiB;  // ~11x overwrite: GC must relocate
  spec.seed = 777;
  const auto stats = wl::JobRunner::run_to_completion(sim, dev, spec);

  dev.ftl().trim(0, 4096);  // trim a 16 MiB stripe
  sim.run();

  Fnv1a d;
  const auto& m = dev.ftl().mapping();
  for (Lpn lpn = 0; lpn < m.logical_pages(); ++lpn) {
    d.mix(m.peek(lpn)).mix(m.stamp_of(lpn));
  }
  d.mix(m.mapped_count());
  d.mix(stats.last_complete);
  d.mix(stats.all_latency.mean());
  d.mix(static_cast<std::uint64_t>(stats.all_latency.max()));
  d.mix(dev.ftl().gc_stats().relocated_slots);
  d.mix(dev.ftl().gc_stats().victims_collected);
  d.mix(dev.ftl().stats().user_programmed_slots);
  d.mix(dev.ftl().stats().flash_read_pages);
  return d.value();
}

TEST(Determinism, PageMapDigestMatchesPreMappingRefactorHead) {
  EXPECT_EQ(ssd_mapping_digest(), 9238988344121643801ull);
}

TEST(Determinism, ThreeTenantSeedsDiverge) {
  const auto a = run_three_tenants(1);
  const auto b = run_three_tenants(2);
  EXPECT_NE(a.makespan, b.makespan);
}

// ---------------------------------------------------------------------------
// Parallel engine: the determinism matrix.  The same 4-cluster replay fleet
// runs at 1/2/4/8 threads; per-shard digests, the merged fairness report,
// the contract verdicts, and the event totals must all be identical.
// threads=1 takes the single-simulator `MultiClusterHost` path, so this is
// also the sharded-vs-legacy equivalence proof, not just shard scheduling.
// ---------------------------------------------------------------------------

placement::PlacementScenarioResult run_replay_fleet(int threads) {
  placement::PlacementScenarioOptions opt;
  opt.base.quick = true;
  opt.base.solo_baselines = false;  // covered by the scenario suites
  opt.base.replay = true;
  opt.base.replay_events = 3000;
  opt.base.threads = threads;
  opt.placement.clusters = 4;  // 3 tenants -> one cluster stays idle
  opt.placement.policy = placement::Policy::kSpread;
  return placement::run_placement_scenario(tenant::Scenario::kFairShare, opt);
}

TEST(Determinism, ParallelReplayMatrixIsThreadCountInvariant) {
  const auto base = run_replay_fleet(1);
  ASSERT_EQ(base.shard_digest.size(), 4u);  // one shard per cluster
  ASSERT_EQ(base.tenants.size(), 3u);

  contract::ReplayCheckConfig check;
  check.budget_gbs = 0.05;  // tight budget so violations actually fire
  check.budget_iops = 2000;
  std::vector<contract::ReplayVerdict> base_verdicts;
  for (std::size_t i = 0; i < base.tenants.size(); ++i) {
    base_verdicts.push_back(contract::evaluate_replay(
        base.traces[i], base.colocated[i], base.backlog_peak[i], check));
  }

  for (const int threads : {2, 4, 8}) {
    const auto r = run_replay_fleet(threads);
    EXPECT_EQ(base.shard_digest, r.shard_digest) << "threads " << threads;
    EXPECT_EQ(base.sim_events, r.sim_events) << "threads " << threads;
    EXPECT_EQ(base.makespan, r.makespan);
    EXPECT_EQ(base.final_cluster, r.final_cluster);
    EXPECT_EQ(base.initial_cluster, r.initial_cluster);

    // Merged fairness report.
    EXPECT_DOUBLE_EQ(base.report.jain_index, r.report.jain_index);
    EXPECT_DOUBLE_EQ(base.report.aggregate_gbs, r.report.aggregate_gbs);
    ASSERT_EQ(base.report.tenants.size(), r.report.tenants.size());
    for (std::size_t i = 0; i < base.report.tenants.size(); ++i) {
      const auto& a = base.report.tenants[i];
      const auto& b = r.report.tenants[i];
      EXPECT_EQ(a.ops, b.ops) << "tenant " << i;
      EXPECT_DOUBLE_EQ(a.mean_us, b.mean_us);
      EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
      EXPECT_DOUBLE_EQ(a.throughput_gbs, b.throughput_gbs);
      EXPECT_DOUBLE_EQ(a.share, b.share);
      EXPECT_DOUBLE_EQ(a.slowdown_p99_us, b.slowdown_p99_us);
    }

    // Contract verdicts over the merged replay outcomes.
    ASSERT_EQ(r.traces.size(), base_verdicts.size());
    for (std::size_t i = 0; i < base_verdicts.size(); ++i) {
      const auto v = contract::evaluate_replay(r.traces[i], r.colocated[i],
                                               r.backlog_peak[i], check);
      const auto& want = base_verdicts[i];
      EXPECT_DOUBLE_EQ(want.offered_gbs, v.offered_gbs) << "tenant " << i;
      EXPECT_DOUBLE_EQ(want.achieved_gbs, v.achieved_gbs);
      EXPECT_DOUBLE_EQ(want.slowdown_p50_ms, v.slowdown_p50_ms);
      EXPECT_DOUBLE_EQ(want.slowdown_p99_ms, v.slowdown_p99_ms);
      EXPECT_EQ(want.backlog_peak, v.backlog_peak);
      ASSERT_EQ(want.violations.size(), v.violations.size()) << "tenant " << i;
      for (std::size_t k = 0; k < want.violations.size(); ++k) {
        EXPECT_EQ(want.violations[k].rule, v.violations[k].rule);
        EXPECT_DOUBLE_EQ(want.violations[k].severity,
                         v.violations[k].severity);
        EXPECT_EQ(want.violations[k].detail, v.violations[k].detail);
      }
    }
  }
}

// The same invariance one level up: the replay fleet's per-shard digests
// (which fold in every ESSD-path event) must match the pre-refactor HEAD
// at 1, 2 and 4 worker threads.  Guards the FtlConfig/ClusterConfig
// threading added for mapping ablation: with the policy knob at its
// default, no fleet-visible event may move.
TEST(Determinism, FleetDigestsMatchPreMappingRefactorHead) {
  const std::vector<std::uint64_t> want = {
      10907057635761261763ull, 14388622975025698312ull,
      4097056090190038752ull, 4832774139040818048ull};
  for (const int threads : {1, 2, 4}) {
    const auto r = run_replay_fleet(threads);
    EXPECT_EQ(r.shard_digest, want) << "threads " << threads;
    EXPECT_EQ(r.sim_events, 18333u) << "threads " << threads;
    EXPECT_EQ(r.makespan, 500337469u) << "threads " << threads;
  }
}

// ---------------------------------------------------------------------------
// Epoch-sliced rebalancing fleet: the fused-shard engine's digests, event
// count, and slice accounting are pinned across the whole thread matrix.
// Rebalancing fleets run the sliced schedule at *every* thread count (one
// thread runs the same slice barriers inline), so any divergence here means
// the partition evolution leaked a thread-count dependence.
// ---------------------------------------------------------------------------

fleet::FleetReport run_sliced_rebalance_fleet(int threads) {
  fleet::FleetSpec spec;
  spec.clusters = 4;
  spec.tenants = 12;
  spec.seed = 11;
  spec.duration = 150 * kMs;
  spec.diurnal_period = 80 * kMs;
  spec.mean_iops = 400.0;
  spec.max_tenant_iops = 4000.0;
  spec.burst_iops = 2000.0;
  spec.rebalance_watermark = 1.05;
  spec.rebalance_interval = 10 * kMs;
  spec.budget.max_concurrent = 2;
  spec.budget.max_total = 3;
  spec.budget.copy_bandwidth_bps = 200e6;
  return fleet::run_fleet(spec, {.threads = threads});
}

TEST(Determinism, SlicedRebalanceDigestMatrixIsPinned) {
  const fleet::FleetReport base = run_sliced_rebalance_fleet(1);
  ASSERT_EQ(base.digests.size(), 4u);  // shard-per-cluster, rebalancing on
  EXPECT_GT(base.raw.sliced.slices, 0u);
  for (const int threads : {2, 4, 8}) {
    const fleet::FleetReport r = run_sliced_rebalance_fleet(threads);
    EXPECT_EQ(r.digests, base.digests) << "threads " << threads;
    EXPECT_EQ(r.sim_events, base.sim_events) << "threads " << threads;
    EXPECT_EQ(r.makespan, base.makespan) << "threads " << threads;
    EXPECT_EQ(r.raw.sliced.slices, base.raw.sliced.slices);
    EXPECT_EQ(r.raw.sliced.fusions, base.raw.sliced.fusions);
    EXPECT_EQ(r.raw.sliced.splits, base.raw.sliced.splits);
    EXPECT_EQ(r.raw.sliced.max_group_clusters,
              base.raw.sliced.max_group_clusters);
  }
}

TEST(Determinism, DeviceSeedChangesOutcome) {
  sim::Simulator sim_a;
  auto cfg = essd::aws_io2_profile(1 * kGiB);
  essd::EssdDevice dev_a(sim_a, cfg);
  sim::Simulator sim_b;
  cfg.seed ^= 0x5a5a;
  cfg.cluster.seed ^= 0x5a5a;
  essd::EssdDevice dev_b(sim_b, cfg);

  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 4096;
  spec.queue_depth = 2;
  spec.total_ops = 1000;
  spec.seed = 5;
  const auto a = wl::JobRunner::run_to_completion(sim_a, dev_a, spec);
  const auto b = wl::JobRunner::run_to_completion(sim_b, dev_b, spec);
  EXPECT_NE(a.last_complete, b.last_complete);
}

}  // namespace
}  // namespace uc
