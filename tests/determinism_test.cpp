// Reproducibility guarantees: identical seeds must replay bit-identical
// experiments on every device family; different seeds must diverge.

#include <gtest/gtest.h>

#include <cstdint>

#include "common/units.h"
#include "essd/essd_device.h"
#include "ssd/ssd_device.h"
#include "workload/runner.h"

namespace uc {
namespace {

using namespace units;

wl::JobStats run_ssd(std::uint64_t job_seed) {
  sim::Simulator sim;
  ssd::SsdDevice dev(sim, ssd::samsung_970pro_scaled(1 * kGiB));
  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  spec.write_ratio = 0.5;
  spec.total_ops = 3000;
  spec.seed = job_seed;
  return wl::JobRunner::run_to_completion(sim, dev, spec);
}

wl::JobStats run_essd(std::uint64_t job_seed) {
  sim::Simulator sim;
  essd::EssdDevice dev(sim, essd::aws_io2_profile(1 * kGiB));
  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 16384;
  spec.queue_depth = 4;
  spec.total_ops = 2000;
  spec.seed = job_seed;
  return wl::JobRunner::run_to_completion(sim, dev, spec);
}

TEST(Determinism, SsdRunsAreBitIdentical) {
  const auto a = run_ssd(42);
  const auto b = run_ssd(42);
  EXPECT_EQ(a.total_ops(), b.total_ops());
  EXPECT_EQ(a.last_complete, b.last_complete);
  EXPECT_EQ(a.all_latency.count(), b.all_latency.count());
  EXPECT_DOUBLE_EQ(a.all_latency.mean(), b.all_latency.mean());
  EXPECT_EQ(a.all_latency.percentile(99.9), b.all_latency.percentile(99.9));
  EXPECT_EQ(a.write_bytes, b.write_bytes);
}

TEST(Determinism, EssdRunsAreBitIdentical) {
  const auto a = run_essd(1234);
  const auto b = run_essd(1234);
  EXPECT_EQ(a.last_complete, b.last_complete);
  EXPECT_DOUBLE_EQ(a.all_latency.mean(), b.all_latency.mean());
  EXPECT_EQ(a.all_latency.max(), b.all_latency.max());
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_ssd(1);
  const auto b = run_ssd(2);
  // Different offset streams and jitter draws: timings cannot coincide.
  EXPECT_NE(a.last_complete, b.last_complete);
}

TEST(Determinism, DeviceSeedChangesOutcome) {
  sim::Simulator sim_a;
  auto cfg = essd::aws_io2_profile(1 * kGiB);
  essd::EssdDevice dev_a(sim_a, cfg);
  sim::Simulator sim_b;
  cfg.seed ^= 0x5a5a;
  cfg.cluster.seed ^= 0x5a5a;
  essd::EssdDevice dev_b(sim_b, cfg);

  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 4096;
  spec.queue_depth = 2;
  spec.total_ops = 1000;
  spec.seed = 5;
  const auto a = wl::JobRunner::run_to_completion(sim_a, dev_a, spec);
  const auto b = wl::JobRunner::run_to_completion(sim_b, dev_b, spec);
  EXPECT_NE(a.last_complete, b.last_complete);
}

}  // namespace
}  // namespace uc
