// Reproducibility guarantees: identical seeds must replay bit-identical
// experiments on every device family — including multi-tenant shared
// clusters; different seeds must diverge.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "essd/essd_device.h"
#include "ssd/ssd_device.h"
#include "tenant/tenant.h"
#include "workload/runner.h"

namespace uc {
namespace {

using namespace units;

wl::JobStats run_ssd(std::uint64_t job_seed) {
  sim::Simulator sim;
  ssd::SsdDevice dev(sim, ssd::samsung_970pro_scaled(1 * kGiB));
  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  spec.write_ratio = 0.5;
  spec.total_ops = 3000;
  spec.seed = job_seed;
  return wl::JobRunner::run_to_completion(sim, dev, spec);
}

wl::JobStats run_essd(std::uint64_t job_seed) {
  sim::Simulator sim;
  essd::EssdDevice dev(sim, essd::aws_io2_profile(1 * kGiB));
  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 16384;
  spec.queue_depth = 4;
  spec.total_ops = 2000;
  spec.seed = job_seed;
  return wl::JobRunner::run_to_completion(sim, dev, spec);
}

TEST(Determinism, SsdRunsAreBitIdentical) {
  const auto a = run_ssd(42);
  const auto b = run_ssd(42);
  EXPECT_EQ(a.total_ops(), b.total_ops());
  EXPECT_EQ(a.last_complete, b.last_complete);
  EXPECT_EQ(a.all_latency.count(), b.all_latency.count());
  EXPECT_DOUBLE_EQ(a.all_latency.mean(), b.all_latency.mean());
  EXPECT_EQ(a.all_latency.percentile(99.9), b.all_latency.percentile(99.9));
  EXPECT_EQ(a.write_bytes, b.write_bytes);
}

TEST(Determinism, EssdRunsAreBitIdentical) {
  const auto a = run_essd(1234);
  const auto b = run_essd(1234);
  EXPECT_EQ(a.last_complete, b.last_complete);
  EXPECT_DOUBLE_EQ(a.all_latency.mean(), b.all_latency.mean());
  EXPECT_EQ(a.all_latency.max(), b.all_latency.max());
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_ssd(1);
  const auto b = run_ssd(2);
  // Different offset streams and jitter draws: timings cannot coincide.
  EXPECT_NE(a.last_complete, b.last_complete);
}

tenant::HostResult run_three_tenants(std::uint64_t seed) {
  using namespace units;
  essd::EssdConfig base = essd::aws_io2_profile(64 * kMiB);
  base.cluster.spare_pool_bytes = 192 * kMiB;
  std::vector<tenant::TenantSpec> tenants(3);
  for (int i = 0; i < 3; ++i) {
    tenants[static_cast<std::size_t>(i)].name = "t" + std::to_string(i);
    tenants[static_cast<std::size_t>(i)].capacity_bytes = 64 * kMiB;
    tenants[static_cast<std::size_t>(i)].qos.bw_bytes_per_s = 1.0e9;
    auto& job = tenants[static_cast<std::size_t>(i)].load.job;
    job.pattern =
        i == 2 ? wl::AccessPattern::kSequential : wl::AccessPattern::kRandom;
    job.io_bytes = i == 0 ? 4096u : 65536u;
    job.queue_depth = 2 + i;
    // Tenant 0 runs a mixed job so the seed steers the op sequence itself
    // (pure-ratio jobs only reseed their offsets, which a symmetric idle
    // cluster can absorb without timing divergence).
    job.write_ratio = i == 0 ? 0.5 : (i == 1 ? 0.0 : 1.0);
    job.total_ops = 800;
    job.seed = seed + static_cast<std::uint64_t>(i);
  }
  sim::Simulator sim;
  tenant::SharedClusterHost host(sim, base, tenants);
  return host.run();
}

TEST(Determinism, ThreeTenantSharedClusterIsBitIdentical) {
  const auto a = run_three_tenants(4242);
  const auto b = run_three_tenants(4242);
  ASSERT_EQ(a.stats.size(), b.stats.size());
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].last_complete, b.stats[i].last_complete) << i;
    EXPECT_EQ(a.stats[i].all_latency.count(), b.stats[i].all_latency.count());
    EXPECT_DOUBLE_EQ(a.stats[i].all_latency.mean(),
                     b.stats[i].all_latency.mean());
    EXPECT_EQ(a.stats[i].all_latency.max(), b.stats[i].all_latency.max());
    EXPECT_EQ(a.stats[i].write_bytes, b.stats[i].write_bytes);
    EXPECT_EQ(a.stats[i].read_bytes, b.stats[i].read_bytes);
  }
}

// The sched refactor's contract: under the default FIFO policy the entire
// request path (QoS gate, frontend pipe, NIC pipes, node pipelines,
// cleaner) must reproduce the pre-refactor simulator bit for bit.  These
// digests were captured from the seed tree before `src/sched/` existed; a
// change here means the FIFO fast path is no longer the identity.
TEST(Determinism, FifoDigestsMatchPreSchedSeed) {
  const auto r = run_three_tenants(4242);
  EXPECT_EQ(r.makespan, 137686008u);
  ASSERT_EQ(r.stats.size(), 3u);
  EXPECT_EQ(r.stats[0].last_complete, 137686008u);
  EXPECT_EQ(r.stats[1].last_complete, 129940945u);
  EXPECT_EQ(r.stats[2].last_complete, 99521141u);
  EXPECT_EQ(r.stats[0].all_latency.max(), 519085u);
  EXPECT_EQ(r.stats[1].all_latency.max(), 606057u);
  EXPECT_EQ(r.stats[2].all_latency.max(), 602528u);
  EXPECT_DOUBLE_EQ(r.stats[0].all_latency.mean(), 344096.54249999998);
  EXPECT_DOUBLE_EQ(r.stats[1].all_latency.mean(), 486685.46124999999);
  EXPECT_DOUBLE_EQ(r.stats[2].all_latency.mean(), 496495.08624999999);
  EXPECT_EQ(r.stats[0].write_bytes, 1744896u);
  EXPECT_EQ(r.stats[0].read_bytes, 1531904u);
  EXPECT_EQ(r.stats[1].read_bytes, 52428800u);
  EXPECT_EQ(r.stats[2].write_bytes, 52428800u);
}

TEST(Determinism, SoloEssdDigestMatchesPreSchedSeed) {
  const auto s = run_essd(1234);
  EXPECT_EQ(s.last_complete, 187141779u);
  EXPECT_EQ(s.all_latency.max(), 440074u);
  EXPECT_DOUBLE_EQ(s.all_latency.mean(), 374043.842);
}

TEST(Determinism, ThreeTenantSeedsDiverge) {
  const auto a = run_three_tenants(1);
  const auto b = run_three_tenants(2);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(Determinism, DeviceSeedChangesOutcome) {
  sim::Simulator sim_a;
  auto cfg = essd::aws_io2_profile(1 * kGiB);
  essd::EssdDevice dev_a(sim_a, cfg);
  sim::Simulator sim_b;
  cfg.seed ^= 0x5a5a;
  cfg.cluster.seed ^= 0x5a5a;
  essd::EssdDevice dev_b(sim_b, cfg);

  wl::JobSpec spec;
  spec.pattern = wl::AccessPattern::kRandom;
  spec.io_bytes = 4096;
  spec.queue_depth = 2;
  spec.total_ops = 1000;
  spec.seed = 5;
  const auto a = wl::JobRunner::run_to_completion(sim_a, dev_a, spec);
  const auto b = wl::JobRunner::run_to_completion(sim_b, dev_b, spec);
  EXPECT_NE(a.last_complete, b.last_complete);
}

}  // namespace
}  // namespace uc
