// Tests for the page mapping's stamp-ordered update rule — the invariant
// that lets host flushes, GC relocations, and stale program completions
// race safely.

#include <gtest/gtest.h>

#include "ftl/mapping.h"

namespace uc::ftl {
namespace {

TEST(PageMapping, StartsUnmapped) {
  PageMapping m(16);
  EXPECT_EQ(m.logical_pages(), 16u);
  EXPECT_EQ(m.mapped_count(), 0u);
  for (Lpn lpn = 0; lpn < 16; ++lpn) {
    EXPECT_EQ(m.lookup(lpn), flash::kInvalidSpa);
    EXPECT_FALSE(m.is_mapped(lpn));
  }
}

TEST(PageMapping, UpdateMapsAndReturnsPrevious) {
  PageMapping m(16);
  auto r1 = m.update_if_newer(3, 100, 1);
  EXPECT_TRUE(r1.applied);
  EXPECT_EQ(r1.previous, flash::kInvalidSpa);
  EXPECT_EQ(m.lookup(3), 100u);
  EXPECT_EQ(m.stamp_of(3), 1u);
  EXPECT_EQ(m.mapped_count(), 1u);

  auto r2 = m.update_if_newer(3, 200, 2);
  EXPECT_TRUE(r2.applied);
  EXPECT_EQ(r2.previous, 100u);
  EXPECT_EQ(m.lookup(3), 200u);
  EXPECT_EQ(m.mapped_count(), 1u);
}

TEST(PageMapping, StaleUpdateLoses) {
  PageMapping m(16);
  ASSERT_TRUE(m.update_if_newer(5, 100, 10).applied);
  const auto stale = m.update_if_newer(5, 200, 9);
  EXPECT_FALSE(stale.applied);
  EXPECT_EQ(m.lookup(5), 100u);
  EXPECT_EQ(m.stamp_of(5), 10u);
}

TEST(PageMapping, EqualStampWins) {
  // GC relocates data carrying its original stamp; the relocation must win
  // over the stale physical location.
  PageMapping m(16);
  ASSERT_TRUE(m.update_if_newer(7, 100, 4).applied);
  const auto reloc = m.update_if_newer(7, 300, 4);
  EXPECT_TRUE(reloc.applied);
  EXPECT_EQ(reloc.previous, 100u);
  EXPECT_EQ(m.lookup(7), 300u);
}

TEST(PageMapping, TrimDefeatsInflightPrograms) {
  PageMapping m(16);
  ASSERT_TRUE(m.update_if_newer(2, 100, 5).applied);
  // Trim with a fresh stamp unmaps...
  EXPECT_EQ(m.unmap(2, 6), 100u);
  EXPECT_FALSE(m.is_mapped(2));
  EXPECT_EQ(m.mapped_count(), 0u);
  // ...and an older in-flight program must NOT resurrect the page.
  EXPECT_FALSE(m.update_if_newer(2, 400, 5).applied);
  EXPECT_FALSE(m.is_mapped(2));
  // A genuinely newer write maps again.
  EXPECT_TRUE(m.update_if_newer(2, 500, 7).applied);
  EXPECT_EQ(m.mapped_count(), 1u);
}

TEST(PageMapping, UnmapOfUnmappedIsNoop) {
  PageMapping m(4);
  EXPECT_EQ(m.unmap(1, 1), flash::kInvalidSpa);
  EXPECT_EQ(m.mapped_count(), 0u);
}

}  // namespace
}  // namespace uc::ftl
