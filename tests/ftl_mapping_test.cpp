// Tests for the mapping policies' stamp-ordered update rule — the
// invariant that lets host flushes, GC relocations, and stale program
// completions race safely — plus policy-specific edge cases (DFTL CMT of
// one page, hashed-group partial-group overwrites, learned-run splits).
// The stamp-rule cases run against every policy via the factory; the
// randomized reference-model harness lives in mapping_policy_test.cpp.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ftl/mapping.h"
#include "ftl/mapping_dftl.h"
#include "ftl/mapping_hashed.h"
#include "ftl/mapping_learned.h"

namespace uc::ftl {
namespace {

std::vector<MappingKind> all_kinds() {
  return {MappingKind::kPage, MappingKind::kDftl, MappingKind::kHashedGroup,
          MappingKind::kLearnedRange};
}

std::unique_ptr<MappingPolicy> make(MappingKind kind,
                                    std::uint64_t logical_pages) {
  MappingConfig cfg;
  cfg.kind = kind;
  cfg.cmt_capacity_pages = 2;
  cfg.translation_page_bytes = 64;  // 8 entries/tp: misses at small scale
  cfg.group_pages = 4;
  cfg.min_run_pages = 3;
  return make_mapping_policy(cfg, logical_pages);
}

TEST(MappingPolicy, StartsUnmapped) {
  for (const MappingKind kind : all_kinds()) {
    SCOPED_TRACE(to_string(kind));
    auto m = make(kind, 16);
    EXPECT_EQ(m->logical_pages(), 16u);
    EXPECT_EQ(m->mapped_count(), 0u);
    for (Lpn lpn = 0; lpn < 16; ++lpn) {
      EXPECT_EQ(m->peek(lpn), flash::kInvalidSpa);
      EXPECT_FALSE(m->is_mapped(lpn));
    }
    // Translate-before-write answers unmapped (a DFTL still pays the
    // translation-page fault; the answer itself must be exact).
    EXPECT_EQ(m->translate(9).spa, flash::kInvalidSpa);
    const auto& st = m->stats();
    EXPECT_EQ(st.lookups, st.cache_hits + st.cache_misses);
  }
}

TEST(MappingPolicy, UpdateMapsAndReturnsPrevious) {
  for (const MappingKind kind : all_kinds()) {
    SCOPED_TRACE(to_string(kind));
    auto m = make(kind, 16);
    auto r1 = m->update(3, 100, 1);
    EXPECT_TRUE(r1.applied);
    EXPECT_EQ(r1.previous, flash::kInvalidSpa);
    EXPECT_EQ(m->translate(3).spa, 100u);
    EXPECT_EQ(m->stamp_of(3), 1u);
    EXPECT_EQ(m->mapped_count(), 1u);

    auto r2 = m->update(3, 200, 2);
    EXPECT_TRUE(r2.applied);
    EXPECT_EQ(r2.previous, 100u);
    EXPECT_EQ(m->translate(3).spa, 200u);
    EXPECT_EQ(m->mapped_count(), 1u);
  }
}

TEST(MappingPolicy, StaleUpdateLoses) {
  for (const MappingKind kind : all_kinds()) {
    SCOPED_TRACE(to_string(kind));
    auto m = make(kind, 16);
    ASSERT_TRUE(m->update(5, 100, 10).applied);
    const auto stale = m->update(5, 200, 9);
    EXPECT_FALSE(stale.applied);
    EXPECT_EQ(m->translate(5).spa, 100u);
    EXPECT_EQ(m->stamp_of(5), 10u);
  }
}

TEST(MappingPolicy, EqualStampWins) {
  // GC relocates data carrying its original stamp; the relocation must win
  // over the stale physical location.
  for (const MappingKind kind : all_kinds()) {
    SCOPED_TRACE(to_string(kind));
    auto m = make(kind, 16);
    ASSERT_TRUE(m->update(7, 100, 4).applied);
    const auto reloc = m->on_gc_relocate(7, 300, 4);
    EXPECT_TRUE(reloc.applied);
    EXPECT_EQ(reloc.previous, 100u);
    EXPECT_EQ(m->translate(7).spa, 300u);
  }
}

TEST(MappingPolicy, GcRelocationOfOverwrittenPageIsStale) {
  // The host overwrote the page after GC read the old slot: the relocation
  // arrives carrying the old stamp and must lose without disturbing the
  // newer mapping or the stats invariant.
  for (const MappingKind kind : all_kinds()) {
    SCOPED_TRACE(to_string(kind));
    auto m = make(kind, 16);
    ASSERT_TRUE(m->update(7, 100, 4).applied);   // original write
    ASSERT_TRUE(m->update(7, 500, 9).applied);   // host overwrite
    const auto reloc = m->on_gc_relocate(7, 300, 4);  // stale relocation
    EXPECT_FALSE(reloc.applied);
    EXPECT_EQ(reloc.previous, flash::kInvalidSpa);
    EXPECT_EQ(m->translate(7).spa, 500u);
    EXPECT_EQ(m->stamp_of(7), 9u);
    EXPECT_EQ(m->mapped_count(), 1u);
    const auto& st = m->stats();
    EXPECT_EQ(st.lookups, st.cache_hits + st.cache_misses);
  }
}

TEST(MappingPolicy, TrimDefeatsInflightPrograms) {
  for (const MappingKind kind : all_kinds()) {
    SCOPED_TRACE(to_string(kind));
    auto m = make(kind, 16);
    ASSERT_TRUE(m->update(2, 100, 5).applied);
    // Trim with a fresh stamp unmaps...
    EXPECT_EQ(m->invalidate(2, 6).previous, 100u);
    EXPECT_FALSE(m->is_mapped(2));
    EXPECT_EQ(m->mapped_count(), 0u);
    // ...and an older in-flight program must NOT resurrect the page.
    EXPECT_FALSE(m->update(2, 400, 5).applied);
    EXPECT_FALSE(m->is_mapped(2));
    // A genuinely newer write maps again.
    EXPECT_TRUE(m->update(2, 500, 7).applied);
    EXPECT_EQ(m->mapped_count(), 1u);
  }
}

TEST(MappingPolicy, InvalidateOfUnmappedIsNoop) {
  for (const MappingKind kind : all_kinds()) {
    SCOPED_TRACE(to_string(kind));
    auto m = make(kind, 4);
    EXPECT_EQ(m->invalidate(1, 1).previous, flash::kInvalidSpa);
    EXPECT_EQ(m->mapped_count(), 0u);
    EXPECT_EQ(m->stamp_of(1), 1u);  // the trim stamp must stick
  }
}

TEST(MappingPolicy, GrowKeepsEntriesAndNeverShrinksTable) {
  for (const MappingKind kind : all_kinds()) {
    SCOPED_TRACE(to_string(kind));
    auto m = make(kind, 8);
    ASSERT_TRUE(m->update(3, 70, 1).applied);
    const std::uint64_t before = m->stats().table_bytes;
    m->grow(32);
    EXPECT_EQ(m->logical_pages(), 32u);
    EXPECT_EQ(m->peek(3), 70u);
    EXPECT_EQ(m->peek(31), flash::kInvalidSpa);
    EXPECT_GE(m->stats().table_bytes, before);
    EXPECT_TRUE(m->update(31, 90, 2).applied);
    EXPECT_EQ(m->translate(31).spa, 90u);
  }
}

// ------------------------------------------------------ DFTL specifics --

TEST(DftlMapping, CmtCapacityOneStaysCorrect) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kDftl;
  cfg.cmt_capacity_pages = 1;
  cfg.translation_page_bytes = 32;  // 4 entries per translation page
  DftlMapping m(cfg, 64);
  for (Lpn lpn = 0; lpn < 64; ++lpn) {
    ASSERT_TRUE(m.update(lpn, 1000 + lpn, lpn + 1).applied);
  }
  EXPECT_EQ(m.cached_translation_pages(), 1u);
  for (Lpn lpn = 0; lpn < 64; ++lpn) {
    EXPECT_EQ(m.translate(lpn).spa, 1000 + lpn);
  }
  const auto& st = m.stats();
  EXPECT_EQ(st.lookups, st.cache_hits + st.cache_misses);
  EXPECT_GT(st.cache_misses, 0u);
  EXPECT_GT(st.evict_writebacks, 0u);  // dirty pages were displaced
}

TEST(DftlMapping, MissesChargeFlashReadsAndHitsAreFree) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kDftl;
  cfg.cmt_capacity_pages = 1;
  cfg.translation_page_bytes = 32;
  DftlMapping m(cfg, 64);
  const auto miss = m.update(0, 100, 1);  // cold: faults tp 0
  EXPECT_EQ(miss.flash_reads, 1u);
  EXPECT_EQ(miss.tp_index, 0u);
  const auto hit = m.translate(1);  // same translation page: cached
  EXPECT_EQ(hit.flash_reads, 0u);
  const auto far = m.translate(63);  // different tp evicts the only slot
  EXPECT_EQ(far.flash_reads, 1u);
  EXPECT_EQ(far.tp_index, 63u / 4);
}

TEST(DftlMapping, PeekNeverFaultsTheCmt) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kDftl;
  cfg.cmt_capacity_pages = 1;
  cfg.translation_page_bytes = 32;
  DftlMapping m(cfg, 64);
  ASSERT_TRUE(m.update(0, 100, 1).applied);
  const auto before = m.stats();
  EXPECT_EQ(m.peek(40), flash::kInvalidSpa);  // uncached translation page
  EXPECT_EQ(m.peek(0), 100u);
  const auto& after = m.stats();
  EXPECT_EQ(after.lookups, before.lookups);
  EXPECT_EQ(after.cache_misses, before.cache_misses);
  EXPECT_EQ(m.cached_translation_pages(), 1u);
}

TEST(DftlMapping, TableBytesStayBelowFlatMap) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kDftl;
  cfg.cmt_capacity_pages = 8;
  const std::uint64_t pages = 1 << 16;
  DftlMapping m(cfg, pages);
  for (Lpn lpn = 0; lpn < pages; lpn += 97) {
    ASSERT_TRUE(m.update(lpn, lpn, lpn + 1).applied);
  }
  MappingConfig flat;
  PageMapping page(flat, pages);
  EXPECT_LT(m.stats().table_bytes, page.stats().table_bytes);
}

// ---------------------------------------------- hashed-group specifics --

TEST(HashedGroupMapping, SequentialFillStaysCompact) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kHashedGroup;
  cfg.group_pages = 4;
  HashedGroupMapping m(cfg, 16);
  for (Lpn lpn = 0; lpn < 8; ++lpn) {
    ASSERT_TRUE(m.update(lpn, 500 + lpn, lpn + 1).applied);
  }
  EXPECT_EQ(m.group_count(), 2u);
  EXPECT_EQ(m.compact_groups(), 2u);
  EXPECT_EQ(m.stats().group_rmw_pages, 0u);
}

TEST(HashedGroupMapping, PartialGroupOverwriteChargesRmw) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kHashedGroup;
  cfg.group_pages = 4;
  HashedGroupMapping m(cfg, 16);
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    ASSERT_TRUE(m.update(lpn, 500 + lpn, lpn + 1).applied);
  }
  const std::uint64_t compact_bytes = m.stats().table_bytes;
  // Overwriting one page moves it off the linear layout: the 3 other
  // mapped pages must be re-written into the expanded group.
  ASSERT_TRUE(m.update(1, 900, 10).applied);
  EXPECT_EQ(m.compact_groups(), 0u);
  EXPECT_EQ(m.stats().group_rmw_pages, 3u);
  EXPECT_GT(m.stats().table_bytes, compact_bytes);
  // All translations stay exact after the expansion.
  EXPECT_EQ(m.translate(0).spa, 500u);
  EXPECT_EQ(m.translate(1).spa, 900u);
  EXPECT_EQ(m.translate(2).spa, 502u);
  EXPECT_EQ(m.translate(3).spa, 503u);
}

TEST(HashedGroupMapping, TrimHoleKeepsGroupCompactAndEmptyGroupRecompacts) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kHashedGroup;
  cfg.group_pages = 4;
  HashedGroupMapping m(cfg, 16);
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    ASSERT_TRUE(m.update(lpn, 500 + lpn, lpn + 1).applied);
  }
  // A trim hole is carried by the validity bitmap, not an expansion.
  EXPECT_EQ(m.invalidate(2, 5).previous, 502u);
  EXPECT_EQ(m.compact_groups(), 1u);
  EXPECT_EQ(m.stats().group_rmw_pages, 0u);
  // Draining the group resets it; a later non-linear fill is compact again.
  for (Lpn lpn = 0; lpn < 4; ++lpn) {
    if (lpn != 2) m.invalidate(lpn, 6 + lpn);
  }
  ASSERT_TRUE(m.update(1, 8000, 20).applied);
  EXPECT_EQ(m.compact_groups(), 1u);
}

// --------------------------------------------- learned-range specifics --

TEST(LearnedRangeMapping, SequentialRunBecomesASegment) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kLearnedRange;
  cfg.min_run_pages = 3;
  LearnedRangeMapping m(cfg, 64);
  for (Lpn lpn = 10; lpn < 20; ++lpn) {
    ASSERT_TRUE(m.update(lpn, 300 + lpn, 100 + lpn).applied);
  }
  EXPECT_EQ(m.segment_count(), 1u);
  EXPECT_EQ(m.fallback_count(), 0u);
  for (Lpn lpn = 10; lpn < 20; ++lpn) {
    EXPECT_EQ(m.translate(lpn).spa, 300 + lpn);
    EXPECT_EQ(m.stamp_of(lpn), 100 + lpn);
  }
  EXPECT_EQ(m.stats().learned_hits, 10u);
}

TEST(LearnedRangeMapping, OverwriteSplitsSegmentExactly) {
  MappingConfig cfg;
  cfg.kind = MappingKind::kLearnedRange;
  cfg.min_run_pages = 3;
  LearnedRangeMapping m(cfg, 64);
  for (Lpn lpn = 0; lpn < 10; ++lpn) {
    ASSERT_TRUE(m.update(lpn, 300 + lpn, 100 + lpn).applied);
  }
  ASSERT_EQ(m.segment_count(), 1u);
  // Random overwrite in the middle: [0,4) stays a segment, lpn 4 moves,
  // [5,10) stays a segment.
  ASSERT_TRUE(m.update(4, 7777, 500).applied);
  EXPECT_EQ(m.segment_count(), 2u);
  for (Lpn lpn = 0; lpn < 10; ++lpn) {
    EXPECT_EQ(m.peek(lpn), lpn == 4 ? 7777u : 300 + lpn);
  }
  // A split piece shorter than min_run_pages spills to the fallback map.
  ASSERT_TRUE(m.update(1, 8888, 501).applied);
  EXPECT_EQ(m.peek(0), 300u);
  EXPECT_EQ(m.peek(1), 8888u);
  EXPECT_EQ(m.peek(2), 302u);
  EXPECT_EQ(m.peek(3), 303u);
  EXPECT_GT(m.fallback_count(), 0u);
}

TEST(LearnedRangeMapping, FallbackNeverReturnsWrongPage) {
  // Random writes only: no segments form, every translation is exact.
  MappingConfig cfg;
  cfg.kind = MappingKind::kLearnedRange;
  cfg.min_run_pages = 4;
  LearnedRangeMapping m(cfg, 64);
  const Lpn order[] = {9, 3, 27, 3, 41, 9, 60, 0};
  WriteStamp stamp = 0;
  for (const Lpn lpn : order) {
    ++stamp;
    ASSERT_TRUE(m.update(lpn, 1000 + 10 * stamp, stamp).applied);
  }
  EXPECT_EQ(m.segment_count(), 0u);
  EXPECT_EQ(m.translate(3).spa, 1000u + 10 * 4);   // latest write wins
  EXPECT_EQ(m.translate(9).spa, 1000u + 10 * 6);
  EXPECT_EQ(m.translate(60).spa, 1000u + 10 * 7);
  const auto& st = m.stats();
  EXPECT_EQ(st.learned_hits, 0u);
  EXPECT_EQ(st.lookups, st.cache_hits + st.cache_misses);
}

}  // namespace
}  // namespace uc::ftl
