// Tests for the contract library: the suite's measurement plumbing, the
// observation evaluators on synthetic and simulated data, the cliff
// detector, and the report renderers.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.h"
#include "contract/checker.h"
#include "contract/observations.h"
#include "contract/report.h"
#include "contract/suite.h"
#include "essd/essd_device.h"
#include "ssd/ssd_device.h"

namespace uc::contract {
namespace {

using namespace units;

DeviceFactory tiny_ssd() {
  return [](sim::Simulator& sim) -> std::unique_ptr<BlockDevice> {
    return std::make_unique<ssd::SsdDevice>(
        sim, ssd::samsung_970pro_scaled(2 * kGiB));
  };
}

DeviceFactory tiny_essd() {
  return [](sim::Simulator& sim) -> std::unique_ptr<BlockDevice> {
    return std::make_unique<essd::EssdDevice>(
        sim, essd::alibaba_pl3_profile(2 * kGiB));
  };
}

SuiteConfig tiny_suite_config() {
  SuiteConfig cfg;
  cfg.sizes = {4096, 65536};
  cfg.queue_depths = {1, 8};
  cfg.ops_per_cell = 300;
  cfg.region_bytes = 256 * kMiB;
  cfg.settle_time = 2 * kSec;
  return cfg;
}

TEST(Suite, LatencyMatrixHasAllCells) {
  const CharacterizationSuite suite(tiny_suite_config());
  const auto m = suite.run_latency_matrix(tiny_ssd(), WorkloadKind::kRandomRead);
  EXPECT_EQ(m.cells.size(), 4u);
  for (const auto& cell : m.cells) {
    EXPECT_GT(cell.avg_ns, 0.0);
    EXPECT_GE(cell.p999_ns, cell.avg_ns * 0.5);
    EXPECT_GT(cell.iops, 0.0);
  }
  // Cell addressing: row-major [qd][size].
  EXPECT_EQ(m.cell(0, 1).io_bytes, 65536u);
  EXPECT_EQ(m.cell(1, 0).queue_depth, 8);
}

TEST(Suite, GcTimelineAccountsAllBytes) {
  const CharacterizationSuite suite(tiny_suite_config());
  const auto run = suite.run_gc_timeline(tiny_essd(), 0.25, 131072, 16);
  EXPECT_EQ(run.total_written_bytes, 512 * kMiB);
  EXPECT_FALSE(run.timeline.empty());
}

TEST(Suite, PatternGainMatrixComputesGain) {
  const CharacterizationSuite suite(tiny_suite_config());
  const auto m = suite.run_pattern_gain(tiny_essd(), {65536}, {16},
                                        units::kSec / 4);
  ASSERT_EQ(m.random_gbs.size(), 1u);
  ASSERT_EQ(m.sequential_gbs.size(), 1u);
  EXPECT_GT(m.gain(0, 0), 1.0);  // the ESSD profile gains from random
  EXPECT_DOUBLE_EQ(m.max_gain(), m.gain(0, 0));
}

TEST(GcCliffDetector, FindsSyntheticCliff) {
  GcRunResult run;
  run.device_capacity_bytes = 1000000000;  // 1 GB
  for (int i = 0; i < 60; ++i) {
    TimelinePoint p;
    p.time_s = i;
    p.gb_per_s = i < 30 ? 2.0 : 0.3;
    p.bytes = static_cast<std::uint64_t>(p.gb_per_s * 1e9);
    run.timeline.push_back(p);
  }
  const auto cliff = detect_gc_cliff(run);
  ASSERT_TRUE(cliff.found);
  EXPECT_NEAR(cliff.plateau_gbs, 2.0, 0.01);
  EXPECT_NEAR(cliff.at_time_s, 30.0, 1.5);
  EXPECT_NEAR(cliff.post_gbs, 0.3, 0.05);
  // ~60 GB written at the cliff over a 1 GB device.
  EXPECT_NEAR(cliff.at_capacity_multiple, 60.0, 3.0);
}

TEST(GcCliffDetector, FlatTimelineHasNoCliff) {
  GcRunResult run;
  run.device_capacity_bytes = 1000000000;
  for (int i = 0; i < 60; ++i) {
    TimelinePoint p;
    p.time_s = i;
    p.gb_per_s = 1.1;
    p.bytes = 1100000000;
    run.timeline.push_back(p);
  }
  const auto cliff = detect_gc_cliff(run);
  EXPECT_FALSE(cliff.found);
  EXPECT_NEAR(cliff.plateau_gbs, 1.1, 0.01);
}

TEST(Observations, Obs2ComparesCliffPositions) {
  GcRunResult early;
  GcRunResult late;
  early.device_capacity_bytes = late.device_capacity_bytes = 1000000000;
  for (int i = 0; i < 40; ++i) {
    TimelinePoint p;
    p.time_s = i;
    p.gb_per_s = i < 10 ? 2.0 : 0.2;
    p.bytes = static_cast<std::uint64_t>(p.gb_per_s * 1e9);
    early.timeline.push_back(p);
    TimelinePoint q;
    q.time_s = i;
    q.gb_per_s = i < 35 ? 2.0 : 0.2;
    q.bytes = static_cast<std::uint64_t>(q.gb_per_s * 1e9);
    late.timeline.push_back(q);
  }
  const auto r = evaluate_obs2(late, early);
  EXPECT_TRUE(r.holds);
  const auto inverted = evaluate_obs2(early, late);
  EXPECT_FALSE(inverted.holds);
}

TEST(Observations, Obs4DeterminismMetrics) {
  BudgetScan flat;
  BudgetScan wild;
  for (int r = 0; r <= 100; r += 25) {
    flat.write_ratios_pct.push_back(r);
    flat.total_gbs.push_back(1.1);
    flat.write_gbs.push_back(1.1 * r / 100.0);
    wild.write_ratios_pct.push_back(r);
    wild.total_gbs.push_back(2.5 + 0.018 * r);  // 2.5 .. 4.3
    wild.write_gbs.push_back(0.0);
  }
  const auto r = evaluate_obs4(flat, wild, 1.1);
  EXPECT_TRUE(r.holds);
  EXPECT_LT(r.target_cv, 0.01);
  EXPECT_GT(r.reference_cv, 0.1);
  EXPECT_TRUE(r.pinned_to_budget);
  // A device pinned far from its published budget must fail.
  const auto off_budget = evaluate_obs4(flat, wild, 3.0);
  EXPECT_FALSE(off_budget.holds);
}

TEST(Renderers, ProduceFigureShapedText) {
  const CharacterizationSuite suite(tiny_suite_config());
  const auto target =
      suite.run_latency_matrix(tiny_essd(), WorkloadKind::kRandomWrite);
  const auto reference =
      suite.run_latency_matrix(tiny_ssd(), WorkloadKind::kRandomWrite);
  const std::string grid = render_latency_matrix(target, reference, false);
  EXPECT_NE(grid.find("random write avg"), std::string::npos);
  EXPECT_NE(grid.find("QD 1"), std::string::npos);
  EXPECT_NE(grid.find("x ("), std::string::npos);  // gap cells

  GcRunResult run;
  run.device_capacity_bytes = 1000000000;
  for (int i = 0; i < 20; ++i) {
    TimelinePoint p;
    p.time_s = i;
    p.gb_per_s = 1.0;
    p.bytes = 1000000000;
    run.timeline.push_back(p);
  }
  run.total_written_bytes = 20000000000ull;
  const std::string tl = render_gc_timeline("dev", run, 10);
  EXPECT_NE(tl.find("no cliff"), std::string::npos);
  EXPECT_NE(tl.find("GB/s"), std::string::npos);
}

TEST(Checker, QuickAuditFindsTheContractOnEssd) {
  CheckerOptions options;
  options.quick = true;
  options.gc_capacity_multiples = 0.5;  // keep the runtime small
  const ContractChecker checker(options);
  const auto contract = checker.check(tiny_essd(), "essd-under-test",
                                      tiny_ssd(), "ssd-ref", 1.1);
  ASSERT_EQ(contract.observations.size(), 4u);
  // Obs 1 (latency gap), Obs 3 (pattern gain) and Obs 4 (budget) must hold
  // for the PL3 profile; Obs 2 trivially holds when neither device cliffs
  // within the tiny write volume.
  EXPECT_TRUE(contract.observations[0].holds) << contract.observations[0].evidence;
  EXPECT_TRUE(contract.observations[2].holds) << contract.observations[2].evidence;
  EXPECT_TRUE(contract.observations[3].holds) << contract.observations[3].evidence;
  EXPECT_EQ(contract.implications.size(), 5u);
  const std::string report = render_contract(contract);
  EXPECT_NE(report.find("Unwritten Contract"), std::string::npos);
  EXPECT_NE(report.find("Impl 5"), std::string::npos);
}

TEST(Checker, SsdAgainstItselfShowsNoContract) {
  CheckerOptions options;
  options.quick = true;
  options.gc_capacity_multiples = 0.25;
  const ContractChecker checker(options);
  const auto contract =
      checker.check(tiny_ssd(), "ssd-a", tiny_ssd(), "ssd-b", 0.0);
  // A local SSD measured against itself: no latency gap, no pattern gain.
  EXPECT_FALSE(contract.observations[0].holds);
  EXPECT_FALSE(contract.observations[2].holds);
  EXPECT_FALSE(contract.behaves_like_essd());
}

}  // namespace
}  // namespace uc::contract
