// Tests for the deterministic RNG and its distributions.  Determinism
// matters more than statistical perfection here: every experiment in the
// library must replay bit-identically from its seed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace uc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(7);
  parent2.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIsInRangeAndRoughlyFlat) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    ++buckets[static_cast<int>(u * 10)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(3);
  const std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng.uniform_u64(n);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / static_cast<int>(n), 600);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_range(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    saw_lo = saw_lo || v == 5;
    saw_hi = saw_hi || v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, LognormalUnitMeanIsUnitMean) {
  Rng rng(6);
  for (const double sigma : {0.1, 0.3, 0.8}) {
    double sum = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) sum += rng.lognormal_unit_mean(sigma);
    EXPECT_NEAR(sum / n, 1.0, 0.02) << "sigma=" << sigma;
  }
  // sigma=0 must be exactly deterministic.
  EXPECT_DOUBLE_EQ(rng.lognormal_unit_mean(0.0), 1.0);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(8);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// Property sweep: zipf respects its domain and produces the expected skew
// (hotter ranks strictly more likely) for a range of thetas.
class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SkewAndDomain) {
  const double theta = GetParam();
  Rng rng(42);
  ZipfGenerator zipf(1000, theta);
  std::vector<int> counts(1000, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = zipf.next(rng);
    ASSERT_LT(v, 1000u);
    ++counts[v];
  }
  // Rank 0 is the hottest, and the head outweighs the tail.
  EXPECT_GT(counts[0], counts[500]);
  int head = 0;
  int tail = 0;
  for (int i = 0; i < 100; ++i) head += counts[i];
  for (int i = 900; i < 1000; ++i) tail += counts[i];
  EXPECT_GT(head, tail * 2) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTest,
                         ::testing::Values(0.5, 0.9, 0.99, 1.2));

TEST(Zipf, SingleElementDomain) {
  Rng rng(1);
  ZipfGenerator zipf(1, 0.99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

}  // namespace
}  // namespace uc
