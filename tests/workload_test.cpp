// Tests for the FIO-like workload engine: offset patterns, job bounds,
// read/write mixing, think time, and stats accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/units.h"
#include "ssd/ssd_device.h"
#include "workload/patterns.h"
#include "workload/runner.h"

namespace uc::wl {
namespace {

using namespace units;

TEST(OffsetGenerator, SequentialWrapsAround) {
  OffsetGenerator gen(AccessPattern::kSequential, 0, 4 * 4096, 4096, 0.0, 1);
  EXPECT_EQ(gen.next(), 0u);
  EXPECT_EQ(gen.next(), 4096u);
  EXPECT_EQ(gen.next(), 8192u);
  EXPECT_EQ(gen.next(), 12288u);
  EXPECT_EQ(gen.next(), 0u);  // wrap
}

TEST(OffsetGenerator, SequentialHonorsRegionOffset) {
  OffsetGenerator gen(AccessPattern::kSequential, 1 * kMiB, 2 * 4096, 4096,
                      0.0, 1);
  EXPECT_EQ(gen.next(), 1 * kMiB);
  EXPECT_EQ(gen.next(), 1 * kMiB + 4096);
}

TEST(OffsetGenerator, RandomStaysAlignedAndInRegion) {
  OffsetGenerator gen(AccessPattern::kRandom, 64 * kKiB, 1 * kMiB, 16384, 0.0,
                      7);
  for (int i = 0; i < 10000; ++i) {
    const ByteOffset off = gen.next();
    ASSERT_GE(off, 64 * kKiB);
    ASSERT_LT(off, 64 * kKiB + 1 * kMiB);
    ASSERT_EQ((off - 64 * kKiB) % 16384, 0u);
  }
}

TEST(OffsetGenerator, UniformRandomCoversRegion) {
  OffsetGenerator gen(AccessPattern::kRandom, 0, 64 * 4096, 4096, 0.0, 11);
  std::set<ByteOffset> seen;
  for (int i = 0; i < 4000; ++i) seen.insert(gen.next());
  EXPECT_EQ(seen.size(), 64u);  // all slots touched
}

TEST(OffsetGenerator, ZipfSkewsAccesses) {
  OffsetGenerator gen(AccessPattern::kRandom, 0, 1024 * 4096, 4096, 0.99, 13);
  std::map<ByteOffset, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[gen.next()];
  // The hottest offset must take far more than a uniform share (~49).
  int hottest = 0;
  for (const auto& [off, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, 1000);
}

struct DeviceFixture {
  sim::Simulator sim;
  ssd::SsdDevice dev;
  DeviceFixture() : dev(sim, ssd::samsung_970pro_scaled(2 * kGiB)) {}
};

TEST(JobRunner, OpsBoundIsExact) {
  DeviceFixture f;
  JobSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  spec.total_ops = 500;
  spec.seed = 1;
  const auto stats = JobRunner::run_to_completion(f.sim, f.dev, spec);
  EXPECT_EQ(stats.total_ops(), 500u);
  EXPECT_EQ(stats.total_bytes(), 500u * 4096);
}

TEST(JobRunner, BytesBoundStopsAtTarget) {
  DeviceFixture f;
  JobSpec spec;
  spec.io_bytes = 65536;
  spec.queue_depth = 4;
  spec.total_bytes = 1 * kMiB;
  spec.seed = 2;
  const auto stats = JobRunner::run_to_completion(f.sim, f.dev, spec);
  EXPECT_EQ(stats.total_bytes(), 1 * kMiB);
}

TEST(JobRunner, DurationBoundStopsIssuing) {
  DeviceFixture f;
  JobSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 4;
  spec.duration = 10 * kMs;
  spec.seed = 3;
  const auto stats = JobRunner::run_to_completion(f.sim, f.dev, spec);
  EXPECT_GT(stats.total_ops(), 100u);
  // Completions may trail the deadline slightly (in-flight ops drain) but
  // submissions stop at it.
  EXPECT_LT(stats.last_complete, 11 * kMs);
}

TEST(JobRunner, MixedRatioApproximatelyHolds) {
  DeviceFixture f;
  JobSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 16;
  spec.total_ops = 4000;
  spec.write_ratio = 0.3;
  spec.seed = 4;
  const auto stats = JobRunner::run_to_completion(f.sim, f.dev, spec);
  const double measured = static_cast<double>(stats.write_ops) /
                          static_cast<double>(stats.total_ops());
  EXPECT_NEAR(measured, 0.3, 0.03);
  EXPECT_EQ(stats.read_ops + stats.write_ops, 4000u);
}

TEST(JobRunner, ThinkTimeSlowsIssueRate) {
  DeviceFixture fast;
  DeviceFixture slow;
  JobSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 1;
  spec.total_ops = 200;
  spec.seed = 5;
  const auto fast_stats = JobRunner::run_to_completion(fast.sim, fast.dev, spec);
  spec.think_time = 100 * kUs;
  const auto slow_stats = JobRunner::run_to_completion(slow.sim, slow.dev, spec);
  EXPECT_GT(slow_stats.last_complete, fast_stats.last_complete + 15 * kMs);
}

TEST(JobRunner, LatencyHistogramsSplitByOp) {
  DeviceFixture f;
  JobSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 4;
  spec.total_ops = 1000;
  spec.write_ratio = 0.5;
  spec.seed = 6;
  const auto stats = JobRunner::run_to_completion(f.sim, f.dev, spec);
  EXPECT_EQ(stats.read_latency.count() + stats.write_latency.count(),
            stats.all_latency.count());
  EXPECT_EQ(stats.read_latency.count(), stats.read_ops);
  // On a fresh SSD, buffered writes are much faster than flash reads...
  // except unwritten reads are also fast; both must at least be recorded.
  EXPECT_GT(stats.write_latency.count(), 0u);
}

TEST(JobRunner, SpecValidationCatchesMistakes) {
  DeviceFixture f;
  JobSpec spec;
  spec.io_bytes = 1000;  // unaligned
  spec.total_ops = 1;
  EXPECT_FALSE(spec.validate(f.dev.info()).is_ok());
  spec.io_bytes = 4096;
  spec.total_ops = 0;  // no bound at all
  EXPECT_FALSE(spec.validate(f.dev.info()).is_ok());
  spec.total_ops = 1;
  spec.queue_depth = 0;
  EXPECT_FALSE(spec.validate(f.dev.info()).is_ok());
  spec.queue_depth = 1;
  spec.write_ratio = 1.5;
  EXPECT_FALSE(spec.validate(f.dev.info()).is_ok());
  spec.write_ratio = 1.0;
  spec.region_bytes = 4 * kGiB;  // beyond the 2 GiB device
  EXPECT_FALSE(spec.validate(f.dev.info()).is_ok());
}

TEST(JobRunner, ThroughputMatchesBytesOverSpan) {
  DeviceFixture f;
  JobSpec spec;
  spec.io_bytes = 262144;
  spec.queue_depth = 16;
  spec.total_bytes = 256 * kMiB;
  spec.seed = 7;
  const auto stats = JobRunner::run_to_completion(f.sim, f.dev, spec);
  const double expect = static_cast<double>(stats.total_bytes()) /
                        static_cast<double>(stats.last_complete -
                                            stats.first_submit);
  EXPECT_DOUBLE_EQ(stats.throughput_gbs(), expect);
  EXPECT_GT(stats.throughput_gbs(), 1.0);  // a healthy fresh SSD
}

}  // namespace
}  // namespace uc::wl
