// Tests for the chunk map, the cluster segment pool, and the per-chunk
// append log with its live/garbage accounting and cleaning.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "ebs/chunk_map.h"
#include "ebs/segment_store.h"

namespace uc::ebs {
namespace {

TEST(ChunkMap, SplitsVolumeAndPlacesDistinctReplicas) {
  ChunkMapConfig cfg;
  cfg.chunk_bytes = 1 << 20;
  cfg.replication = 3;
  cfg.nodes = 8;
  cfg.seed = 5;
  ChunkMap map(16ull << 20, cfg);
  EXPECT_EQ(map.chunk_count(), 16u);
  EXPECT_EQ(map.pages_per_chunk(), 256u);
  for (ChunkId c = 0; c < map.chunk_count(); ++c) {
    const auto& reps = map.replicas(c);
    ASSERT_EQ(reps.size(), 3u);
    std::set<int> unique(reps.begin(), reps.end());
    EXPECT_EQ(unique.size(), 3u) << "replicas must be distinct nodes";
    for (const int n : reps) {
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 8);
    }
  }
  EXPECT_EQ(map.chunk_of(0), 0u);
  EXPECT_EQ(map.chunk_of((1 << 20) - 1), 0u);
  EXPECT_EQ(map.chunk_of(1 << 20), 1u);
  EXPECT_EQ(map.offset_in_chunk((1 << 20) + 4096), 4096u);
}

TEST(ChunkMap, PlacementUsesAllNodes) {
  ChunkMapConfig cfg;
  cfg.chunk_bytes = 1 << 20;
  cfg.nodes = 8;
  ChunkMap map(256ull << 20, cfg);  // 256 chunks
  std::set<int> used;
  for (ChunkId c = 0; c < map.chunk_count(); ++c) {
    for (const int n : map.replicas(c)) used.insert(n);
  }
  EXPECT_EQ(used.size(), 8u);
}

TEST(SegmentPool, AllocateReleaseWithReserve) {
  SegmentPool pool(10, 2);
  EXPECT_EQ(pool.free_groups(), 10u);
  // Normal allocations stop at the reserve.
  int taken = 0;
  while (pool.try_allocate(false)) ++taken;
  EXPECT_EQ(taken, 8);
  EXPECT_EQ(pool.free_groups(), 2u);
  // Privileged (cleaner) allocations may dig in.
  EXPECT_TRUE(pool.try_allocate(true));
  EXPECT_TRUE(pool.try_allocate(true));
  EXPECT_FALSE(pool.try_allocate(true));
  pool.release(3);
  EXPECT_EQ(pool.free_groups(), 3u);
  EXPECT_NEAR(pool.free_ratio(), 0.3, 1e-12);
}

TEST(SegmentPool, ReleaseCallbackFires) {
  SegmentPool pool(4, 1);
  int calls = 0;
  pool.set_release_callback([&] { ++calls; });
  ASSERT_TRUE(pool.try_allocate(false));
  pool.release(1);
  EXPECT_EQ(calls, 1);
}

TEST(ChunkLog, AppendTracksLiveAndStamps) {
  SegmentPool pool(16, 1);
  ChunkLog log(/*pages=*/64, /*pages_per_segment=*/8);
  EXPECT_FALSE(log.is_written(3));
  ASSERT_TRUE(log.append_page(3, 100, pool));
  EXPECT_TRUE(log.is_written(3));
  EXPECT_EQ(log.page_stamp(3), 100u);
  EXPECT_EQ(log.live_pages(), 1u);
  EXPECT_EQ(log.garbage_pages(), 0u);
  EXPECT_EQ(pool.free_groups(), 15u);  // one segment opened
}

TEST(ChunkLog, OverwriteCreatesGarbage) {
  SegmentPool pool(16, 1);
  ChunkLog log(64, 8);
  ASSERT_TRUE(log.append_page(3, 1, pool));
  ASSERT_TRUE(log.append_page(3, 2, pool));
  EXPECT_EQ(log.live_pages(), 1u);
  EXPECT_EQ(log.garbage_pages(), 1u);
  EXPECT_EQ(log.page_stamp(3), 2u);
}

TEST(ChunkLog, TrimDropsPage) {
  SegmentPool pool(16, 1);
  ChunkLog log(64, 8);
  ASSERT_TRUE(log.append_page(5, 1, pool));
  log.trim_page(5);
  EXPECT_FALSE(log.is_written(5));
  EXPECT_EQ(log.live_pages(), 0u);
  EXPECT_EQ(log.garbage_pages(), 1u);
}

TEST(ChunkLog, AppendStallsWhenPoolEmpty) {
  SegmentPool pool(2, 1);  // one usable group
  ChunkLog log(64, 8);
  for (std::uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(log.append_page(p, p + 1, pool));
  }
  // Next append needs a new segment; only the reserve remains.
  EXPECT_FALSE(log.append_page(8, 9, pool));
  pool.release(1);
  EXPECT_TRUE(log.append_page(8, 9, pool));
}

TEST(ChunkLog, VictimSelectionPrefersGarbage) {
  SegmentPool pool(16, 1);
  ChunkLog log(64, 4);
  // Fill segment 0 with pages 0-3, segment 1 with pages 4-7.
  for (std::uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(log.append_page(p, p + 1, pool));
  }
  // Overwrite pages 0-2 (lands in segment 2): segment 0 is 75% garbage.
  for (std::uint32_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(log.append_page(p, 10 + p, pool));
  }
  const auto victim = log.pick_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->seq, 0u);
  EXPECT_EQ(victim->live_pages, 1u);
  EXPECT_NEAR(victim->garbage_ratio(), 0.75, 1e-12);
}

TEST(ChunkLog, CleanRelocatesLiveAndFrees) {
  SegmentPool pool(16, 1);
  ChunkLog log(64, 4);
  for (std::uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(log.append_page(p, p + 1, pool));
  }
  for (std::uint32_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(log.append_page(p, 10 + p, pool));
  }
  const auto free_before = pool.free_groups();
  std::uint32_t moved = 0;
  ASSERT_TRUE(log.clean_segment(0, pool, &moved));
  EXPECT_EQ(moved, 1u);  // page 3 was the only live page in segment 0
  EXPECT_GE(pool.free_groups(), free_before);
  // Page 3 survives with its stamp.
  EXPECT_TRUE(log.is_written(3));
  EXPECT_EQ(log.page_stamp(3), 4u);
  EXPECT_EQ(log.live_pages(), 8u);
  // Cleaning the 75%-garbage victim shrank garbage.
  EXPECT_LE(log.garbage_pages(), 1u);
}

TEST(ChunkLog, CleanEverythingReclaimsAllGarbage) {
  SegmentPool pool(64, 2);
  ChunkLog log(32, 4);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(log.append_page(static_cast<std::uint32_t>(rng.uniform_u64(32)),
                                static_cast<WriteStamp>(i + 1), pool));
  }
  while (true) {
    const auto victim = log.pick_victim();
    if (!victim.has_value() || victim->garbage_ratio() <= 0.0) break;
    ASSERT_TRUE(log.clean_segment(victim->seq, pool, nullptr));
  }
  // All that remains is live data plus at most one open segment's slack.
  EXPECT_EQ(log.live_pages(), 32u);
  EXPECT_LE(log.garbage_pages(), 4u);
}

}  // namespace
}  // namespace uc::ebs
