// Device-level local-SSD tests: the latency anchors behind the paper's
// Figure 2 denominators and the behavioural fingerprints (prefetched
// sequential reads, buffered writes, read/write bandwidth asymmetry).

#include <gtest/gtest.h>

#include <cstdint>

#include "common/units.h"
#include "contract/suite.h"
#include "ssd/ssd_device.h"
#include "workload/runner.h"

namespace uc::ssd {
namespace {

using namespace units;

wl::JobStats run_job(SsdDevice& dev, sim::Simulator& sim, wl::AccessPattern pat,
                     bool write, std::uint32_t io, int qd, std::uint64_t ops) {
  wl::JobSpec spec;
  spec.pattern = pat;
  spec.io_bytes = io;
  spec.queue_depth = qd;
  spec.write_ratio = write ? 1.0 : 0.0;
  spec.region_bytes = 1 * kGiB;
  spec.total_ops = ops;
  spec.seed = 21;
  return wl::JobRunner::run_to_completion(sim, dev, spec);
}

TEST(SsdDevice, LatencyAnchors4KQd1) {
  // Paper-implied Samsung 970 Pro anchors: buffered write ~10 us, random
  // read ~60 us, prefetched sequential read ~10 us.
  sim::Simulator sim;
  SsdDevice dev(sim, samsung_970pro_scaled(2 * kGiB));
  const auto writes =
      run_job(dev, sim, wl::AccessPattern::kRandom, true, 4096, 1, 2000);
  EXPECT_GT(writes.all_latency.mean(), 6e3);
  EXPECT_LT(writes.all_latency.mean(), 16e3);

  contract::CharacterizationSuite::precondition(sim, dev, 1 * kGiB, 5 * kSec,
                                                3);
  const auto rand_reads =
      run_job(dev, sim, wl::AccessPattern::kRandom, false, 4096, 1, 2000);
  EXPECT_GT(rand_reads.all_latency.mean(), 45e3);
  EXPECT_LT(rand_reads.all_latency.mean(), 80e3);

  const auto seq_reads =
      run_job(dev, sim, wl::AccessPattern::kSequential, false, 4096, 1, 4000);
  EXPECT_LT(seq_reads.all_latency.mean(), 15e3);
  // Sequential reads must be several times faster than random (prefetch).
  EXPECT_LT(seq_reads.all_latency.mean() * 3, rand_reads.all_latency.mean());
}

TEST(SsdDevice, MaxBandwidthAsymmetry) {
  // Reads (host-link bound ~3.5 GB/s) beat writes (program bound ~2.5).
  sim::Simulator sim;
  SsdDevice dev(sim, samsung_970pro_scaled(2 * kGiB));
  contract::CharacterizationSuite::precondition(sim, dev, 1 * kGiB, 5 * kSec,
                                                3);
  const auto reads = run_job(dev, sim, wl::AccessPattern::kSequential, false,
                             262144, 32, 12000);
  sim.run_until(sim.now() + 5 * kSec);
  const auto writes = run_job(dev, sim, wl::AccessPattern::kSequential, true,
                              262144, 32, 8000);
  EXPECT_GT(reads.throughput_gbs(), 3.2);
  EXPECT_LT(reads.throughput_gbs(), 3.7);
  EXPECT_GT(writes.throughput_gbs(), 2.2);
  EXPECT_LT(writes.throughput_gbs(), 2.9);
  EXPECT_GT(reads.throughput_gbs(), writes.throughput_gbs());
}

TEST(SsdDevice, RandomEqualsSequentialWritesWithoutGc) {
  // Observation 3's control: on a fresh local SSD the write buffer makes
  // random and sequential writes equivalent.
  double gbs[2] = {0, 0};
  int i = 0;
  for (const auto pat :
       {wl::AccessPattern::kRandom, wl::AccessPattern::kSequential}) {
    sim::Simulator sim;
    SsdDevice dev(sim, samsung_970pro_scaled(2 * kGiB));
    gbs[i++] = run_job(dev, sim, pat, true, 65536, 32, 8000).throughput_gbs();
  }
  EXPECT_NEAR(gbs[0] / gbs[1], 1.0, 0.1);
}

TEST(SsdDevice, FlushBarrierWaitsForDrain) {
  sim::Simulator sim;
  SsdDevice dev(sim, samsung_970pro_scaled(2 * kGiB));
  int writes_done = 0;
  for (int i = 0; i < 32; ++i) {
    dev.submit(IoRequest{static_cast<IoId>(i), IoOp::kWrite,
                         static_cast<ByteOffset>(i) * 1048576, 1048576},
               [&](const IoResult&) { ++writes_done; });
  }
  bool flushed = false;
  dev.submit(IoRequest{100, IoOp::kFlush, 0, 0},
             [&](const IoResult&) { flushed = true; });
  sim.run();
  EXPECT_EQ(writes_done, 32);
  ASSERT_TRUE(flushed);
  EXPECT_TRUE(dev.ftl().write_buffer_empty());
}

TEST(SsdDevice, TrimMakesReadsCheap) {
  sim::Simulator sim;
  SsdDevice dev(sim, samsung_970pro_scaled(2 * kGiB));
  contract::CharacterizationSuite::precondition(sim, dev, 64 * kMiB, kSec, 3);
  bool trimmed = false;
  dev.submit(IoRequest{1, IoOp::kTrim, 0, 64 * 1024 * 1024},
             [&](const IoResult&) { trimmed = true; });
  sim.run();
  ASSERT_TRUE(trimmed);
  const auto reads =
      run_job(dev, sim, wl::AccessPattern::kRandom, false, 4096, 1, 500);
  // All reads hit unmapped pages: DRAM-speed.
  EXPECT_LT(reads.all_latency.mean(), 15e3);
}

TEST(SsdDevice, IoStatsAccumulate) {
  sim::Simulator sim;
  SsdDevice dev(sim, samsung_970pro_scaled(2 * kGiB));
  run_job(dev, sim, wl::AccessPattern::kRandom, true, 8192, 4, 100);
  EXPECT_EQ(dev.io_stats().writes, 100u);
  EXPECT_EQ(dev.io_stats().written_bytes, 100u * 8192);
}

}  // namespace
}  // namespace uc::ssd
